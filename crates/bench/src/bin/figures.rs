//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p vanguard-bench --bin figures -- all
//! cargo run --release -p vanguard-bench --bin figures -- table2 --quick
//! cargo run --release -p vanguard-bench --bin figures -- fig8 fig9 sensitivity
//! cargo run --release -p vanguard-bench --bin figures -- fig8 --quick --assert-shape
//! cargo run --release -p vanguard-bench --bin figures -- ablation --quick
//! cargo run --release -p vanguard-bench --bin figures -- fig8 --transform meld
//! ```
//!
//! `ablation` runs every benchmark through all four transform passes
//! (vanguard / meld / shadow / stacked) head-to-head on the 4-wide and
//! prints the per-benchmark ablation table; `--transform <kind>`
//! re-runs any *other* item under a rival pass instead of the paper's
//! decomposition. `ablation` is deliberately not part of `all`, which
//! reproduces the paper's figures only.
//!
//! `--assert-shape` (CI's paper-shape job) re-checks the qualitative
//! claims of Figure 8 — positive geomean speedup at every width, the
//! paper's high-opportunity benchmarks leading the low-opportunity ones —
//! and exits non-zero on any violation.
//!
//! `--no-replay` disables the simulator's steady-state replay layer.
//! Output is byte-identical with or without it (CI checks exactly
//! that); the flag exists to measure replay's throughput contribution
//! and to rule the layer out when diagnosing.
//!
//! All items share one experiment engine: profiles and compiled pairs
//! are computed once per distinct (benchmark, predictor, width) and
//! reused across figures, and simulations run on a worker pool sized by
//! `VANGUARD_THREADS` (default: available parallelism). Figure data is
//! printed to stdout — byte-identical for any worker count — while
//! progress and per-stage timings go to stderr (`--verbose` adds a line
//! per simulation job).

use std::sync::Arc;
use std::time::Instant;
use vanguard_bench::{
    ablation_rows, check_ablation_shape, check_fig8_shape, fig14_rows, fig2_fig3_series,
    format_ablation, format_speedups, format_table2, geomean_pct, icache_ablation,
    sensitivity_rows, suite_speedups, table1_text, table2_rows, BenchScale, StderrProgress,
    SuiteEngine,
};
use vanguard_core::TransformKind;
use vanguard_workloads::suite;

fn main() {
    let mut bad_item = false;
    let mut shape_violated = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose");
    let assert_shape = args.iter().any(|a| a == "--assert-shape");
    // `--no-replay` disables the simulator's steady-state replay layer
    // (results are bit-identical either way; this exists to measure the
    // layer's throughput contribution and to rule it out when debugging).
    let no_replay = args.iter().any(|a| a == "--no-replay");
    // `--max-cycles N` arms the engine's per-job cycle-budget watchdog:
    // a wedged simulation becomes a TimedOut outcome instead of hanging
    // the run (`VANGUARD_JOB_TIMEOUT` is the wall-clock equivalent).
    let max_cycles: Option<u64> = args
        .iter()
        .position(|a| a == "--max-cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    // `--transform <kind>` swaps the pass used by every non-ablation
    // item (vanguard | meld | shadow | stacked).
    let transform: Option<TransformKind> = args
        .iter()
        .position(|a| a == "--transform")
        .and_then(|i| args.get(i + 1))
        .map(|v| match TransformKind::parse(v) {
            Some(kind) => kind,
            None => {
                eprintln!("unknown transform kind: {v} (want vanguard|meld|shadow|stacked)");
                std::process::exit(2);
            }
        });
    let scale = if quick {
        BenchScale::Quick
    } else {
        BenchScale::Full
    };
    let mut what: Vec<&str> = args
        .iter()
        .enumerate()
        // Skip flags and the value slots of `--max-cycles`/`--transform`.
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0 || (args[i - 1] != "--max-cycles" && args[i - 1] != "--transform"))
        })
        .map(|(_, a)| a.as_str())
        .collect();
    if what.is_empty() || what.contains(&"all") {
        what = vec![
            "table1",
            "fig2",
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "table2",
            "fig14",
            "sensitivity",
            "icache",
        ];
    }

    let mut eng = SuiteEngine::new(scale);
    if let Some(kind) = transform {
        eng.set_transform_kind(kind);
        eprintln!("[engine] transform pass: {kind}");
    }
    if no_replay {
        eng.set_replay(false);
        eprintln!("[engine] steady-state replay: off");
    }
    if let Some(mc) = max_cycles {
        let mut policy = eng.engine().fault_policy().clone();
        policy.max_cycles = Some(mc);
        eng.set_fault_policy(policy);
    }
    eng.observe(Arc::new(if verbose {
        StderrProgress::verbose()
    } else {
        StderrProgress::new()
    }));
    eprintln!("[engine] {} workers", eng.engine().workers());
    let started = Instant::now();
    // Per-item replay visibility (`--verbose`): deltas of the engine's
    // replay counters across each item, so a suite with a 0% hit rate is
    // visible in the log without opening BENCH_sim.json.
    let mut replay_mark = eng.engine().stats();

    for item in what {
        let item_started = Instant::now();
        match item {
            "table1" => {
                println!("== Table 1: Machine Configuration Parameters ==");
                println!("{}", table1_text());
            }
            "fig2" | "fig3" => {
                let (label, specs) = if item == "fig2" {
                    (
                        "Figure 2: SPEC 2006 INT predictability vs bias (top 75 fwd branches)",
                        suite::spec2006_int(),
                    )
                } else {
                    (
                        "Figure 3: SPEC 2006 FP predictability vs bias (top 75 fwd branches)",
                        suite::spec2006_fp(),
                    )
                };
                println!("== {label} ==");
                println!(
                    "{:>4} {:>8} {:>14} {:>10}",
                    "rank", "bias", "predictability", "execs"
                );
                for p in fig2_fig3_series(&mut eng, &specs, 75) {
                    println!(
                        "{:>4} {:>8.3} {:>14.3} {:>10}",
                        p.rank, p.bias, p.predictability, p.executed
                    );
                }
                println!();
            }
            "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13" => {
                let (label, specs, best) = match item {
                    "fig8" => (
                        "Figure 8: SPEC06 INT speedup, all REF inputs",
                        suite::spec2006_int(),
                        false,
                    ),
                    "fig9" => (
                        "Figure 9: SPEC06 INT speedup, best REF input",
                        suite::spec2006_int(),
                        true,
                    ),
                    "fig10" => (
                        "Figure 10: SPEC00 INT speedup, all REF inputs",
                        suite::spec2000_int(),
                        false,
                    ),
                    "fig11" => (
                        "Figure 11: SPEC00 INT speedup, best REF input",
                        suite::spec2000_int(),
                        true,
                    ),
                    "fig12" => (
                        "Figure 12: SPEC06 FP speedup, all REF inputs",
                        suite::spec2006_fp(),
                        false,
                    ),
                    _ => (
                        "Figure 13: SPEC00 FP speedup, all REF inputs",
                        suite::spec2000_fp(),
                        false,
                    ),
                };
                println!("== {label} ==");
                let rows = suite_speedups(&mut eng, &specs);
                println!("{}", format_speedups(&rows, best));
                if assert_shape && item == "fig8" {
                    match check_fig8_shape(&rows) {
                        Ok(()) => eprintln!("[shape] fig8 shape assertions hold"),
                        Err(violations) => {
                            shape_violated = true;
                            for v in &violations {
                                eprintln!("[shape] VIOLATION: {v}");
                            }
                        }
                    }
                }
            }
            "table2" => {
                println!("== Table 2: SPEC 2006 INT+FP metrics, 4-wide (sorted by SPD) ==");
                let mut specs = suite::spec2006_int();
                specs.extend(suite::spec2006_fp());
                let mut rows = table2_rows(&mut eng, &specs);
                rows.sort_by(|a, b| b.spd.partial_cmp(&a.spd).unwrap());
                println!("{}", format_table2(&rows));
            }
            "fig14" => {
                println!("== Figure 14: % increase in instructions issued (4-wide) ==");
                let mut specs = suite::spec2006_int();
                specs.extend(suite::spec2006_fp());
                let rows = fig14_rows(&mut eng, &specs);
                for r in &rows {
                    println!("{:<12} {:>6.2}%", r.name, r.increase_pct);
                }
                let avg: f64 = rows.iter().map(|r| r.increase_pct).sum::<f64>() / rows.len() as f64;
                println!("{:<12} {avg:>6.2}%\n", "AVERAGE");
            }
            "ablation" => {
                println!("== Transform ablation: SPEC06 INT+FP, 4-wide, speedup% (sites) ==");
                let mut specs = suite::spec2006_int();
                specs.extend(suite::spec2006_fp());
                let rows = ablation_rows(&mut eng, &specs);
                println!("{}", format_ablation(&rows));
                if assert_shape {
                    match check_ablation_shape(&rows) {
                        Ok(()) => eprintln!("[shape] ablation shape assertions hold"),
                        Err(violations) => {
                            shape_violated = true;
                            for v in &violations {
                                eprintln!("[shape] VIOLATION: {v}");
                            }
                        }
                    }
                }
            }
            "sensitivity" => {
                println!("== Section 5.3: branch-predictor sensitivity (astar/sjeng/gobmk/mcf) ==");
                let specs: Vec<_> = suite::spec2006_int()
                    .into_iter()
                    .filter(|s| ["astar", "sjeng", "gobmk", "mcf"].contains(&s.name.as_str()))
                    .collect();
                println!(
                    "{:<8} {:<30} {:>10} {:>9}",
                    "bench", "predictor", "missrate", "speedup"
                );
                for r in sensitivity_rows(&mut eng, &specs) {
                    println!(
                        "{:<8} {:<30} {:>9.2}% {:>8.2}%",
                        r.name,
                        r.predictor,
                        r.mispredict_rate * 100.0,
                        r.speedup_pct
                    );
                }
                println!();
            }
            "icache" => {
                println!("== Section 6.1: I$ 32KB -> 24KB ablation (transformed code) ==");
                let specs = suite::spec2006_int();
                let rows = icache_ablation(&mut eng, &specs);
                println!(
                    "{:<12} {:>12} {:>12} {:>10} {:>22}",
                    "bench", "cyc(32K)", "cyc(24K)", "slowdown", "I$miss-under-mispred"
                );
                let mut slows = Vec::new();
                for r in &rows {
                    println!(
                        "{:<12} {:>12} {:>12} {:>9.2}% {:>21.1}%",
                        r.name,
                        r.cycles_32k,
                        r.cycles_24k,
                        r.slowdown_pct(),
                        r.miss_under_mispredict * 100.0
                    );
                    slows.push(r.slowdown_pct());
                }
                println!("geomean slowdown: {:.2}%\n", geomean_pct(&slows));
            }
            other => {
                eprintln!("unknown item: {other}");
                bad_item = true;
            }
        }
        eprintln!(
            "[engine] item {:<12} done in {:.1} ms",
            item,
            item_started.elapsed().as_secs_f64() * 1e3
        );
        if verbose {
            let now = eng.engine().stats();
            let hits = now.replay_hits - replay_mark.replay_hits;
            let triggers = hits
                + (now.replay_misses - replay_mark.replay_misses)
                + (now.replay_divergences - replay_mark.replay_divergences)
                + (now.replay_suppressed - replay_mark.replay_suppressed);
            if triggers > 0 {
                eprintln!(
                    "[replay] item {:<12} {:.1}% hit rate ({} hits / {} triggers), \
                     {} sites armed, {} disarmed",
                    item,
                    hits as f64 * 100.0 / triggers as f64,
                    hits,
                    triggers,
                    now.replay_armed_sites - replay_mark.replay_armed_sites,
                    now.replay_disarmed_sites - replay_mark.replay_disarmed_sites,
                );
            }
            replay_mark = now;
        }
    }

    eprintln!(
        "[engine] total wall-clock {:.1} ms, per-stage breakdown:\n{}",
        started.elapsed().as_secs_f64() * 1e3,
        eng.engine().stats().summary()
    );
    if bad_item {
        std::process::exit(2);
    }
    if shape_violated {
        eprintln!("[shape] shape assertions FAILED");
        std::process::exit(3);
    }
}

//! Pipeline viewer: run a program on the cycle simulator and print a
//! per-cycle issue trace — the tool for *seeing* why the decomposed
//! version is faster.
//!
//! ```text
//! # Built-in demo (baseline vs decomposed hammock, first 60 cycles):
//! cargo run --release -p vanguard-bench --bin pipeview
//!
//! # Your own program (assembly syntax; see vanguard_isa::parse_program):
//! cargo run --release -p vanguard-bench --bin pipeview -- path/to/prog.s 120
//!
//! # Rival passes on the demo (vanguard | meld | shadow | stacked):
//! cargo run --release -p vanguard-bench --bin pipeview -- --transform shadow
//! ```

use std::sync::Arc;
use vanguard_bench::StderrProgress;
use vanguard_bpred::Combined;
use vanguard_core::engine::{Engine, PredictorKind};
use vanguard_core::{ExperimentInput, RunInput, TransformKind, TransformOptions};
use vanguard_isa::{parse_program, Memory, Program, Reg};
use vanguard_sim::{MachineConfig, Simulator, TraceEvent};

const DEMO: &str = r"
.entry bb0
bb0 <entry>:
    mov r1, #200
    mov r3, #65536
    mov r10, #131072
    ; fallthrough -> bb1
bb1 <head>:
    ld r4, [r3+0]
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    ld r6, [r10+0]
    add r7, r6, #1
    st [r10+64], r7
    jmp bb4
bb3 <taken>:
    ld r6, [r10+8]
    add r7, r6, #2
    st [r10+72], r7
    ; fallthrough -> bb4
bb4 <latch>:
    add r3, r3, #8
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    halt
";

fn demo_memory() -> Memory {
    let mut mem = Memory::new();
    let conds: Vec<u64> = (0..200).map(|i| u64::from(i % 3 != 1)).collect();
    mem.load_words(0x1_0000, &conds);
    mem.load_words(0x2_0000, &(0..64u64).collect::<Vec<_>>());
    mem
}

fn render(label: &str, program: &Program, mem: Memory, window: u64) -> u64 {
    println!("--- {label} ---");
    let sim = Simulator::new(
        program,
        mem,
        MachineConfig::four_wide(),
        Box::new(Combined::ptlsim_default()),
    );
    let mut events: Vec<TraceEvent> = Vec::new();
    let result = sim
        .run_traced(|e| events.push(*e))
        .expect("simulates cleanly");
    // Show a steady-state window starting at the 100th issue (past the
    // cold-I$ warmup, which is all stall); short programs fall back to
    // their first issue.
    let issue_cycles: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Issue { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .collect();
    let start = issue_cycles
        .get(100)
        .or_else(|| issue_cycles.first())
        .copied()
        .unwrap_or(0);
    let end = start + window;
    let mut last_cycle = u64::MAX;
    let mut rows: Vec<String> = Vec::new();
    for e in &events {
        match *e {
            TraceEvent::Issue {
                cycle,
                pc,
                mnemonic,
                wrong_path,
            } if (start..end).contains(&cycle) => {
                if cycle != last_cycle {
                    rows.push(format!("cyc {cycle:>5} |"));
                    last_cycle = cycle;
                }
                let tag = if wrong_path { "*" } else { " " };
                let row = rows.last_mut().expect("row exists");
                row.push_str(&format!(" {mnemonic}@{pc:#x}{tag}"));
            }
            TraceEvent::Flush { cycle, target } if (start..end).contains(&cycle) => {
                rows.push(format!("cyc {cycle:>5} | ==== FLUSH -> {target} ===="));
                last_cycle = u64::MAX;
            }
            TraceEvent::ResolveMispredict { cycle, pc } if (start..end).contains(&cycle) => {
                rows.push(format!("cyc {cycle:>5} | resolve@{pc:#x} MISPREDICT"));
                last_cycle = u64::MAX;
            }
            _ => {}
        }
    }
    for r in &rows {
        println!("{r}");
    }
    println!(
        "({} total cycles, IPC {:.2}; window cycles {start}..{end}; * = wrong-path issue)\n",
        result.stats.cycles,
        result.stats.ipc()
    );
    result.stats.cycles
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A per-cycle trace needs every cycle simulated, so `run_traced`
    // always disables the steady-state replay layer; `--no-replay` is
    // accepted for flag uniformity with figures/inspect and changes
    // nothing here.
    if args.iter().any(|a| a == "--no-replay") {
        eprintln!("[pipeview] note: traced simulation always runs with steady-state replay off");
    }
    let kind: TransformKind = args
        .iter()
        .position(|a| a == "--transform")
        .and_then(|i| args.get(i + 1))
        .map(|v| match TransformKind::parse(v) {
            Some(kind) => kind,
            None => {
                eprintln!("unknown transform kind: {v} (want vanguard|meld|shadow|stacked)");
                std::process::exit(1);
            }
        })
        .unwrap_or_default();
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--transform"))
        .map(|(_, a)| a)
        .collect();
    let max_cycles: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);

    if let Some(path) = positional.first() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(1);
            }
        };
        let program = match parse_program(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("parse error in `{path}`: {e}");
                std::process::exit(1);
            }
        };
        render(path, &program, Memory::new(), max_cycles);
        return;
    }

    // Demo: baseline vs decomposed on the Figure 6-shaped hammock. The
    // pair comes from the experiment engine (profile + compile stages
    // reported through the stderr observer); only the traced simulation
    // below is hand-rolled, because tracing needs `run_traced`.
    let program = parse_program(DEMO).expect("demo parses");
    let mut engine = Engine::new();
    engine.observe(Arc::new(StderrProgress::new()));
    let demo_input = RunInput {
        memory: demo_memory(),
        init_regs: vec![],
    };
    let bench = engine.add_benchmark(ExperimentInput {
        name: "pipeview-demo".into(),
        program,
        train: demo_input.clone(),
        refs: vec![demo_input],
        seed: None,
    });
    let options = TransformOptions {
        kind,
        ..TransformOptions::default()
    };
    let pair = engine
        .compile_pair(
            bench,
            PredictorKind::Combined24KB,
            MachineConfig::four_wide(),
            &options,
            1_000_000,
        )
        .expect("profiles");
    let (base, dec, report) = (pair.baseline, pair.transformed, pair.report);

    println!(
        "Pass `{kind}`: {} site(s) decomposed, {} hammock(s) melded. Watch the\n\
         baseline stall at `cmp`/`br` while the transformed trace runs ahead.\n",
        report.converted.len(),
        report.melded
    );
    let b = render("baseline", &base, demo_memory(), max_cycles);
    let d = render(kind.name(), &dec, demo_memory(), max_cycles);
    println!(
        "speedup: {:.2}%  (r1 iterations: 200)",
        (b as f64 / d as f64 - 1.0) * 100.0
    );
    let _ = Reg(0);
}

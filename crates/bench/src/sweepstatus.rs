//! The sweep daemon's status endpoint: an atomically-published
//! `status.json` in the spool directory, for the explorer (ROADMAP
//! item 5) to poll and for `vanguard-sweep status` to pretty-print.
//!
//! The file is plain JSON, schema [`STATUS_SCHEMA`], rewritten via a
//! temp file and atomic rename so a poller never observes a torn
//! write. Everything in it
//! is either a daemon counter ([`DaemonStatus`]) or a filesystem fact
//! gathered at publish time (worker heartbeat ages, journal + cache
//! sizes, quarantine count) — the daemon holds no state a restart would
//! lose.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag of `status.json`.
pub const STATUS_SCHEMA: &str = "vanguard-sweep-status-v1";

/// File name of the status endpoint inside the spool directory.
pub const STATUS_FILE: &str = "status.json";

/// Prefix of per-worker heartbeat files in the shared cache directory:
/// `hb-<pid>`, mtime refreshed by the worker's heartbeat thread.
pub const HEARTBEAT_PREFIX: &str = "hb-";

/// Milliseconds since the Unix epoch, for `updated_ms` stamps.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One worker's liveness: its pid and how long ago it last heartbeat.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardBeat {
    /// Worker process id (from its `hb-<pid>` file name).
    pub pid: u64,
    /// Milliseconds since the worker last refreshed its heartbeat.
    pub heartbeat_ms: u64,
}

/// The decoded contents of `status.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusSnapshot {
    /// Daemon process id.
    pub pid: u64,
    /// Publish time, milliseconds since the Unix epoch.
    pub updated_ms: u64,
    /// What the daemon is doing (`idle`, `serving <stem>`).
    pub state: String,
    /// Journaled jobs of the request in flight (0 when idle).
    pub jobs_done: u64,
    /// Planned jobs of the request in flight (0 when idle).
    pub jobs_total: u64,
    /// Requests completed since the daemon started.
    pub requests_done: u64,
    /// Requests that failed (malformed or quarantined).
    pub requests_failed: u64,
    /// Current journal tail size in bytes.
    pub journal_bytes: u64,
    /// Current journal compaction-snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Total bytes of cache entries in the shared store.
    pub cache_bytes: u64,
    /// Requests sitting in the spool quarantine.
    pub quarantined: u64,
    /// Live worker heartbeats, oldest pid first.
    pub shards: Vec<ShardBeat>,
}

impl StatusSnapshot {
    /// Renders the canonical JSON form (one key per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{STATUS_SCHEMA}\",");
        let _ = writeln!(out, "  \"pid\": {},", self.pid);
        let _ = writeln!(out, "  \"updated_ms\": {},", self.updated_ms);
        let _ = writeln!(out, "  \"state\": \"{}\",", self.state);
        let _ = writeln!(out, "  \"jobs_done\": {},", self.jobs_done);
        let _ = writeln!(out, "  \"jobs_total\": {},", self.jobs_total);
        let _ = writeln!(out, "  \"requests_done\": {},", self.requests_done);
        let _ = writeln!(out, "  \"requests_failed\": {},", self.requests_failed);
        let _ = writeln!(out, "  \"journal_bytes\": {},", self.journal_bytes);
        let _ = writeln!(out, "  \"snapshot_bytes\": {},", self.snapshot_bytes);
        let _ = writeln!(out, "  \"cache_bytes\": {},", self.cache_bytes);
        let _ = writeln!(out, "  \"quarantined\": {},", self.quarantined);
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"pid\": {}, \"heartbeat_ms\": {}}}",
                    s.pid, s.heartbeat_ms
                )
            })
            .collect();
        let _ = writeln!(out, "  \"shards\": [{}]", shards.join(", "));
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses the JSON form produced by [`StatusSnapshot::render`].
    /// Minimal by design (flat schema, no escapes in `state`): the
    /// status file is machine-written, never hand-edited.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(text: &str) -> Result<StatusSnapshot, String> {
        if field_str(text, "schema").as_deref() != Some(STATUS_SCHEMA) {
            return Err(format!("not a {STATUS_SCHEMA} file"));
        }
        let num = |key: &str| field_u64(text, key).ok_or_else(|| format!("missing field `{key}`"));
        let mut shards = Vec::new();
        if let Some(open) = text.find("\"shards\": [") {
            let rest = &text[open + "\"shards\": [".len()..];
            let close = rest.find(']').ok_or("unterminated shards array")?;
            for obj in rest[..close].split('}') {
                if !obj.contains("\"pid\"") {
                    continue;
                }
                shards.push(ShardBeat {
                    pid: field_u64(obj, "pid").ok_or("shard entry missing pid")?,
                    heartbeat_ms: field_u64(obj, "heartbeat_ms")
                        .ok_or("shard entry missing heartbeat_ms")?,
                });
            }
        }
        Ok(StatusSnapshot {
            pid: num("pid")?,
            updated_ms: num("updated_ms")?,
            state: field_str(text, "state").ok_or("missing field `state`")?,
            jobs_done: num("jobs_done")?,
            jobs_total: num("jobs_total")?,
            requests_done: num("requests_done")?,
            requests_failed: num("requests_failed")?,
            journal_bytes: num("journal_bytes")?,
            snapshot_bytes: num("snapshot_bytes")?,
            cache_bytes: num("cache_bytes")?,
            quarantined: num("quarantined")?,
            shards,
        })
    }

    /// Pretty-prints the status for a human, given how old the file is
    /// (`age_ms`) and the staleness cutoff. A daemon that has not
    /// republished within the cutoff is flagged prominently — its
    /// numbers describe the past.
    pub fn format_human(&self, age_ms: u64, stale_after_ms: u64) -> String {
        let mut out = String::new();
        let freshness = if age_ms > stale_after_ms {
            format!("STALE (updated {age_ms} ms ago; daemon gone?)")
        } else {
            format!("fresh (updated {age_ms} ms ago)")
        };
        let _ = writeln!(out, "daemon   : pid {} — {freshness}", self.pid);
        let _ = writeln!(out, "state    : {}", self.state);
        if self.jobs_total > 0 {
            let _ = writeln!(out, "jobs     : {} / {}", self.jobs_done, self.jobs_total);
        }
        let _ = writeln!(
            out,
            "requests : {} done, {} failed, {} quarantined",
            self.requests_done, self.requests_failed, self.quarantined
        );
        let _ = writeln!(
            out,
            "journal  : {} B tail, {} B snapshot",
            self.journal_bytes, self.snapshot_bytes
        );
        let _ = writeln!(out, "cache    : {} B", self.cache_bytes);
        if self.shards.is_empty() {
            let _ = writeln!(out, "workers  : none");
        } else {
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "worker   : pid {} heartbeat {} ms ago",
                    s.pid, s.heartbeat_ms
                );
            }
        }
        out
    }
}

/// Extracts `"key": <digits>` from a flat JSON text.
fn field_u64(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<value>"` (no escape handling — the writer never
/// emits escapes).
fn field_str(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The daemon's live counters plus the directories to gather filesystem
/// facts from at publish time. Shared (via `Arc`) between the daemon
/// loop and [`run_sharded`](crate::sweep::run_sharded).
#[derive(Debug)]
pub struct DaemonStatus {
    spool: PathBuf,
    cache_dir: PathBuf,
    state: Mutex<String>,
    journal: Mutex<Option<PathBuf>>,
    jobs_done: AtomicU64,
    jobs_total: AtomicU64,
    requests_done: AtomicU64,
    requests_failed: AtomicU64,
}

impl DaemonStatus {
    /// A status publisher for a daemon spooling at `spool` with workers
    /// sharing `cache_dir`.
    pub fn new(spool: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> DaemonStatus {
        DaemonStatus {
            spool: spool.into(),
            cache_dir: cache_dir.into(),
            state: Mutex::new("idle".into()),
            journal: Mutex::new(None),
            jobs_done: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            requests_done: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
        }
    }

    /// Sets the human-readable daemon state (`idle`, `serving <stem>`).
    pub fn set_state(&self, state: &str) {
        if let Ok(mut s) = self.state.lock() {
            *s = state.into();
        }
    }

    /// Points the journal-size gauges at the request in flight (`None`
    /// when idle).
    pub fn set_journal(&self, path: Option<PathBuf>) {
        if let Ok(mut j) = self.journal.lock() {
            *j = path;
        }
    }

    /// Updates the in-flight job progress gauges.
    pub fn set_jobs(&self, done: u64, total: u64) {
        self.jobs_done.store(done, Ordering::Relaxed);
        self.jobs_total.store(total, Ordering::Relaxed);
    }

    /// Counts a completed request.
    pub fn count_request_done(&self) {
        self.requests_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed request (malformed or quarantined).
    pub fn count_request_failed(&self) {
        self.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Gathers the current status: counters plus filesystem facts
    /// (heartbeats, sizes, quarantine population).
    pub fn snapshot(&self) -> StatusSnapshot {
        let journal = self.journal.lock().ok().and_then(|j| j.clone());
        let (journal_bytes, snapshot_bytes) = match &journal {
            Some(path) => {
                let mut snap = path.as_os_str().to_os_string();
                snap.push(".snap");
                (file_len(path), file_len(Path::new(&snap)))
            }
            None => (0, 0),
        };
        let mut shards = scan_heartbeats(&self.cache_dir);
        shards.sort_by_key(|s| s.pid);
        StatusSnapshot {
            pid: std::process::id() as u64,
            updated_ms: now_ms(),
            state: self
                .state
                .lock()
                .map(|s| s.clone())
                .unwrap_or_else(|_| "unknown".into()),
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            jobs_total: self.jobs_total.load(Ordering::Relaxed),
            requests_done: self.requests_done.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            journal_bytes,
            snapshot_bytes,
            cache_bytes: cache_bytes(&self.cache_dir),
            quarantined: quarantined_requests(&self.spool.join("quarantine")),
            shards,
        }
    }

    /// Publishes `status.json` into the spool via temp + rename, so a
    /// poller never sees a torn file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from writing or renaming.
    pub fn publish(&self) -> io::Result<()> {
        fs::create_dir_all(&self.spool)?;
        let tmp = self
            .spool
            .join(format!(".tmp-{}-{STATUS_FILE}", std::process::id()));
        fs::write(&tmp, self.snapshot().render())?;
        fs::rename(&tmp, self.spool.join(STATUS_FILE))
    }
}

fn file_len(path: &Path) -> u64 {
    fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Total size of cache entries (`*.bin`) in the store.
fn cache_bytes(dir: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Number of quarantined `.req` files in a directory (0 when absent);
/// their `.repro.txt` reproducers do not inflate the count.
fn quarantined_requests(dir: &Path) -> u64 {
    fs::read_dir(dir)
        .map(|it| {
            it.flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "req"))
                .count() as u64
        })
        .unwrap_or(0)
}

/// Worker `hb-<pid>` files in the cache dir, with mtime ages.
fn scan_heartbeats(dir: &Path) -> Vec<ShardBeat> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let now = SystemTime::now();
    entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            let pid: u64 = name.strip_prefix(HEARTBEAT_PREFIX)?.parse().ok()?;
            let mtime = e.metadata().ok()?.modified().ok()?;
            let age = now.duration_since(mtime).unwrap_or_default();
            Some(ShardBeat {
                pid,
                heartbeat_ms: age.as_millis() as u64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusSnapshot {
        StatusSnapshot {
            pid: 42,
            updated_ms: 1_000_000,
            state: "serving nightly".into(),
            jobs_done: 3,
            jobs_total: 8,
            requests_done: 2,
            requests_failed: 1,
            journal_bytes: 512,
            snapshot_bytes: 2048,
            cache_bytes: 9999,
            quarantined: 1,
            shards: vec![
                ShardBeat {
                    pid: 101,
                    heartbeat_ms: 40,
                },
                ShardBeat {
                    pid: 102,
                    heartbeat_ms: 75,
                },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrips() {
        let status = sample();
        assert_eq!(StatusSnapshot::parse(&status.render()), Ok(status));
        let empty = StatusSnapshot {
            shards: Vec::new(),
            ..sample()
        };
        assert_eq!(StatusSnapshot::parse(&empty.render()), Ok(empty));
    }

    #[test]
    fn parse_rejects_other_files() {
        assert!(StatusSnapshot::parse("{}").is_err());
        assert!(StatusSnapshot::parse("not json").is_err());
        let truncated = sample().render().replace("\"jobs_done\": 3,\n", "");
        assert!(StatusSnapshot::parse(&truncated).is_err());
    }

    #[test]
    fn formatter_reports_fresh_and_stale() {
        let status = sample();
        let fresh = status.format_human(500, 5_000);
        assert!(fresh.contains("fresh"), "{fresh}");
        assert!(fresh.contains("pid 42"), "{fresh}");
        assert!(fresh.contains("3 / 8"), "{fresh}");
        assert!(fresh.contains("serving nightly"), "{fresh}");
        assert!(fresh.contains("worker   : pid 101"), "{fresh}");
        let stale = status.format_human(60_000, 5_000);
        assert!(stale.contains("STALE"), "{stale}");
    }

    #[test]
    fn publisher_gathers_filesystem_facts() {
        let dir = std::env::temp_dir().join(format!("vanguard-status-pub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spool = dir.join("spool");
        let cache = spool.join("cache");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("pair-0000000000000001.bin"), [0u8; 64]).unwrap();
        std::fs::write(cache.join(format!("{HEARTBEAT_PREFIX}123")), b"hb").unwrap();
        std::fs::create_dir_all(spool.join("quarantine")).unwrap();
        std::fs::write(spool.join("quarantine/poison.req"), b"VGS1\n").unwrap();

        let status = DaemonStatus::new(&spool, &cache);
        status.set_state("serving poison");
        status.set_jobs(1, 4);
        status.count_request_done();
        status.publish().unwrap();

        let text = std::fs::read_to_string(spool.join(STATUS_FILE)).unwrap();
        let parsed = StatusSnapshot::parse(&text).unwrap();
        assert_eq!(parsed.state, "serving poison");
        assert_eq!(parsed.cache_bytes, 64);
        assert_eq!(parsed.quarantined, 1);
        assert_eq!(parsed.requests_done, 1);
        assert_eq!(parsed.shards.len(), 1);
        assert_eq!(parsed.shards[0].pid, 123);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Conversions between workload bundles and experiment inputs.

use vanguard_core::{ExperimentInput, RunInput};
use vanguard_workloads::{BenchmarkSpec, BuiltWorkload};

/// Converts a built workload to an experiment input.
pub fn to_experiment_input(w: BuiltWorkload) -> ExperimentInput {
    ExperimentInput {
        name: w.name,
        program: w.program,
        train: RunInput {
            memory: w.train.memory,
            init_regs: w.train.init_regs,
        },
        refs: w
            .refs
            .into_iter()
            .map(|r| RunInput {
                memory: r.memory,
                init_regs: r.init_regs,
            })
            .collect(),
    }
}

/// Scale knob for harness runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// Shrunken iteration counts and one REF input (CI-sized).
    Quick,
    /// The specs as defined (paper-shaped runs).
    Full,
}

/// Applies the scale knob to a spec.
pub fn quick_spec(mut spec: BenchmarkSpec, scale: BenchScale) -> BenchmarkSpec {
    if scale == BenchScale::Quick {
        spec.iterations = spec.iterations.min(600);
        spec.train_iterations = spec.train_iterations.min(400);
        spec.ref_inputs = 1;
    }
    spec
}

/// Geometric mean of percentage speedups (composed as ratios).
pub fn geomean_pct(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean_pct(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let g = geomean_pct(&[0.0, 21.0]);
        assert!(g > 9.0 && g < 10.5, "{g}");
    }

    #[test]
    fn empty_geomean_is_zero() {
        assert_eq!(geomean_pct(&[]), 0.0);
    }

    #[test]
    fn quick_scale_shrinks() {
        let spec = vanguard_workloads::suite::spec2006_int().remove(0);
        let q = quick_spec(spec.clone(), BenchScale::Quick);
        assert!(q.iterations <= 600);
        assert_eq!(q.ref_inputs, 1);
        let f = quick_spec(spec.clone(), BenchScale::Full);
        assert_eq!(f.iterations, spec.iterations);
    }

    #[test]
    fn conversion_preserves_refs() {
        let spec = quick_spec(
            vanguard_workloads::suite::spec2006_int().remove(0),
            BenchScale::Quick,
        );
        let input = to_experiment_input(spec.build());
        assert_eq!(input.refs.len(), 1);
        assert!(!input.train.init_regs.is_empty());
    }
}

//! Conversions between workload bundles and experiment inputs, plus the
//! harness-wide [`SuiteEngine`] wrapper around the core experiment
//! engine.

use std::collections::HashMap;
use std::sync::Arc;
use vanguard_core::engine::{
    Engine, FaultPolicy, PredictorKind, ProgressObserver, SimJob, SweepCell,
    DEFAULT_MAX_PROFILE_STEPS,
};
use vanguard_core::{
    ExperimentError, ExperimentInput, ExperimentOutcome, RunInput, TransformKind, TransformOptions,
};
use vanguard_ir::Profile;
use vanguard_sim::MachineConfig;
use vanguard_workloads::{BenchmarkSpec, BuiltWorkload};

/// Converts a built workload to an experiment input.
pub fn to_experiment_input(w: BuiltWorkload) -> ExperimentInput {
    ExperimentInput {
        name: w.name,
        program: w.program,
        train: RunInput {
            memory: w.train.memory,
            init_regs: w.train.init_regs,
        },
        refs: w
            .refs
            .into_iter()
            .map(|r| RunInput {
                memory: r.memory,
                init_regs: r.init_regs,
            })
            .collect(),
        seed: Some(w.seed),
    }
}

/// Scale knob for harness runs.
///
/// The contract between the two scales:
///
/// * [`BenchScale::Full`] runs each spec exactly as defined — the
///   paper-shaped iteration counts and every REF input. Figures and
///   tables meant to be compared against the paper use this scale.
/// * [`BenchScale::Quick`] clamps REF iterations to
///   [`BenchScale::QUICK_REF_ITERATIONS`], TRAIN iterations to
///   [`BenchScale::QUICK_TRAIN_ITERATIONS`], and keeps a single REF
///   input ([`BenchScale::QUICK_REF_INPUTS`]). It never *raises* a
///   spec's counts, so a spec smaller than the clamps is unchanged.
///   Quick preserves every structural property the tests rely on
///   (branch-site mix, selection decisions, transformation shape) but
///   shrinks the measured statistics' sample sizes — use it for CI and
///   unit tests, never for paper-comparison numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchScale {
    /// Shrunken iteration counts and one REF input (CI-sized).
    Quick,
    /// The specs as defined (paper-shaped runs).
    Full,
}

impl BenchScale {
    /// REF-iteration clamp applied by [`BenchScale::Quick`]: enough
    /// iterations for every Markov site's measured bias/predictability
    /// to settle within the calibration tolerances, small enough that a
    /// full suite sweep stays CI-sized.
    pub const QUICK_REF_ITERATIONS: u64 = 600;
    /// TRAIN-iteration clamp applied by [`BenchScale::Quick`]: shorter
    /// than the REF clamp (profiling needs only stable selection
    /// decisions, not tight statistics).
    pub const QUICK_TRAIN_ITERATIONS: u64 = 400;
    /// REF-input count under [`BenchScale::Quick`] (bias jitter across
    /// inputs is a Full-scale concern, Figures 8 vs 9).
    pub const QUICK_REF_INPUTS: usize = 1;
}

/// Applies the scale knob to a spec.
pub fn quick_spec(mut spec: BenchmarkSpec, scale: BenchScale) -> BenchmarkSpec {
    if scale == BenchScale::Quick {
        spec.iterations = spec.iterations.min(BenchScale::QUICK_REF_ITERATIONS);
        spec.train_iterations = spec
            .train_iterations
            .min(BenchScale::QUICK_TRAIN_ITERATIONS);
        spec.ref_inputs = BenchScale::QUICK_REF_INPUTS;
    }
    spec
}

/// The bench harness's front door to the core experiment engine: an
/// [`Engine`] plus a name-keyed registry so every figure and table item
/// shares one artifact cache (one profile per benchmark × predictor, one
/// compiled pair per benchmark × width, across *all* items of a run).
///
/// Construct one per harness invocation, subscribe observers, and pass
/// it to the figure functions.
#[derive(Debug)]
pub struct SuiteEngine {
    engine: Engine,
    scale: BenchScale,
    ids: HashMap<String, usize>,
    transform: TransformOptions,
}

impl SuiteEngine {
    /// A suite engine at the given scale with default worker count
    /// (`VANGUARD_THREADS` override honoured).
    pub fn new(scale: BenchScale) -> Self {
        SuiteEngine {
            engine: Engine::new(),
            scale,
            ids: HashMap::new(),
            transform: TransformOptions::default(),
        }
    }

    /// A suite engine with an explicit worker count (1 = serial).
    pub fn with_workers(scale: BenchScale, workers: usize) -> Self {
        SuiteEngine {
            engine: Engine::with_workers(workers),
            scale,
            ids: HashMap::new(),
            transform: TransformOptions::default(),
        }
    }

    /// Selects the transform pass for subsequent [`SuiteEngine::run_cells`]
    /// / [`SuiteEngine::run_jobs`] / [`SuiteEngine::outcome`] calls (the
    /// remaining options keep their paper defaults). Artifacts are keyed
    /// by the full option set, so switching kinds mid-run never collides.
    pub fn set_transform_kind(&mut self, kind: TransformKind) {
        self.transform.kind = kind;
    }

    /// The transform options subsequent runs will use.
    pub fn transform(&self) -> &TransformOptions {
        &self.transform
    }

    /// Enables or disables the simulator's steady-state replay layer
    /// for subsequent runs. Replay is a pure simulator-throughput
    /// optimization — results are bit-identical either way — so it is
    /// *not* part of the artifact-cache key and toggling it mid-run
    /// reuses already-compiled pairs.
    pub fn set_replay(&mut self, enabled: bool) {
        self.transform.replay = if enabled {
            vanguard_core::ReplayPolicy::On
        } else {
            vanguard_core::ReplayPolicy::Off
        };
    }

    /// Subscribes a progress observer on the underlying engine.
    pub fn observe(&mut self, observer: Arc<dyn ProgressObserver>) {
        self.engine.observe(observer);
    }

    /// Overrides the underlying engine's fault policy (watchdog
    /// budgets, retry behaviour, quarantine/cache directories).
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.engine.set_fault_policy(policy);
    }

    /// The underlying engine (cache statistics, registered benchmarks).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The configured scale.
    pub fn scale(&self) -> BenchScale {
        self.scale
    }

    /// The engine benchmark id for a spec, building and registering the
    /// workload on first use (scale applied). Ids are keyed by spec
    /// name, so repeated requests share artifacts.
    pub fn bench_id(&mut self, spec: &BenchmarkSpec) -> usize {
        if let Some(&id) = self.ids.get(&spec.name) {
            return id;
        }
        let input = to_experiment_input(quick_spec(spec.clone(), self.scale).build());
        let id = self.engine.add_benchmark(input);
        self.ids.insert(spec.name.clone(), id);
        id
    }

    /// The TRAIN profile of a spec under a predictor (cached).
    ///
    /// # Errors
    ///
    /// Returns the profiling error.
    pub fn profile(
        &mut self,
        spec: &BenchmarkSpec,
        predictor: PredictorKind,
    ) -> Result<Arc<Profile>, ExperimentError> {
        let id = self.bench_id(spec);
        self.engine
            .profile(id, predictor, DEFAULT_MAX_PROFILE_STEPS)
    }

    /// Runs a sweep matrix with the configured transform options (the
    /// paper's defaults unless [`SuiteEngine::set_transform_kind`] was
    /// called).
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) profiling or simulation error.
    pub fn run_cells(
        &self,
        cells: &[SweepCell],
    ) -> Result<Vec<ExperimentOutcome>, ExperimentError> {
        self.run_cells_with(cells, &self.transform)
    }

    /// Runs a sweep matrix with an explicit option set (the ablation
    /// table sweeps every [`TransformKind`] over the same cells).
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) profiling or simulation error.
    pub fn run_cells_with(
        &self,
        cells: &[SweepCell],
        options: &TransformOptions,
    ) -> Result<Vec<ExperimentOutcome>, ExperimentError> {
        self.engine
            .run_cells(cells, options, DEFAULT_MAX_PROFILE_STEPS)
    }

    /// Runs a flat job list with the configured transform options.
    /// Infallible: each job yields its own [`JobResult`](vanguard_core::engine::JobResult) outcome.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Vec<vanguard_core::engine::JobResult> {
        self.engine
            .run_jobs(jobs, &self.transform, DEFAULT_MAX_PROFILE_STEPS)
    }

    /// Convenience: one spec, one machine, baseline predictor — the old
    /// `Experiment::run` shape, but artifact-cached and pooled.
    ///
    /// # Panics
    ///
    /// Panics if the workload faults (generated kernels never do).
    pub fn outcome(&mut self, spec: &BenchmarkSpec, machine: MachineConfig) -> ExperimentOutcome {
        let bench = self.bench_id(spec);
        let cells = [SweepCell {
            bench,
            machine,
            predictor: PredictorKind::Combined24KB,
        }];
        self.run_cells(&cells)
            .expect("workload simulates cleanly")
            .remove(0)
    }
}

/// Geometric mean of percentage speedups (composed as ratios).
pub fn geomean_pct(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean_pct(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_is_below_arithmetic_mean() {
        let g = geomean_pct(&[0.0, 21.0]);
        assert!(g > 9.0 && g < 10.5, "{g}");
    }

    #[test]
    fn empty_geomean_is_zero() {
        assert_eq!(geomean_pct(&[]), 0.0);
    }

    #[test]
    fn quick_scale_shrinks() {
        let spec = vanguard_workloads::suite::spec2006_int().remove(0);
        let q = quick_spec(spec.clone(), BenchScale::Quick);
        assert!(q.iterations <= 600);
        assert_eq!(q.ref_inputs, 1);
        let f = quick_spec(spec.clone(), BenchScale::Full);
        assert_eq!(f.iterations, spec.iterations);
    }

    #[test]
    fn conversion_preserves_refs() {
        let spec = quick_spec(
            vanguard_workloads::suite::spec2006_int().remove(0),
            BenchScale::Quick,
        );
        let input = to_experiment_input(spec.build());
        assert_eq!(input.refs.len(), 1);
        assert!(!input.train.init_regs.is_empty());
    }
}

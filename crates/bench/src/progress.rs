//! Progress reporting for the harness binaries.
//!
//! Everything goes to **stderr**: figure data on stdout must be
//! byte-identical whatever the worker count, and job-completion order is
//! nondeterministic under parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vanguard_core::engine::{JobResult, ProgressObserver, SimJob, Stage, Variant};
use vanguard_sim::{ReplayStats, SimStats};

/// A [`ProgressObserver`] that logs stage and job completions to stderr.
///
/// `verbose` adds a line per simulation job; otherwise only profile and
/// compile stage executions (the cache-missing, expensive events) are
/// logged.
#[derive(Debug, Default)]
pub struct StderrProgress {
    /// Also log every simulation job as it finishes.
    pub verbose: bool,
    jobs_done: AtomicU64,
}

impl StderrProgress {
    /// A quiet reporter (stage completions only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A reporter that also logs every simulation job.
    pub fn verbose() -> Self {
        StderrProgress {
            verbose: true,
            jobs_done: AtomicU64::new(0),
        }
    }
}

impl ProgressObserver for StderrProgress {
    fn stage_completed(&self, stage: Stage, bench_name: &str, elapsed: Duration, cached: bool) {
        if !cached {
            eprintln!(
                "[engine] {:<8} {:<12} {:>8.1} ms",
                stage.label(),
                bench_name,
                elapsed.as_secs_f64() * 1e3
            );
        }
    }

    fn job_finished(
        &self,
        _index: usize,
        job: &SimJob,
        bench_name: &str,
        stats: &SimStats,
        elapsed: Duration,
    ) {
        let done = self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.verbose {
            let variant = match job.variant {
                Variant::Baseline => "base",
                Variant::Transformed => "xform",
            };
            eprintln!(
                "[engine] sim #{done:<4} {:<12} {}-wide {:<5} ref{} {:>10} cyc {:>8.1} ms {:>7.2} MIPS",
                bench_name,
                job.machine.width,
                variant,
                job.ref_input,
                stats.cycles,
                elapsed.as_secs_f64() * 1e3,
                stats.mips(elapsed)
            );
        }
    }

    fn job_replay(&self, _index: usize, job: &SimJob, bench_name: &str, replay: &ReplayStats) {
        // Only worth a line when replay actually did something (verbose
        // runs with replay off stay readable).
        let triggers = replay.hits + replay.misses + replay.divergences + replay.suppressed_ticks;
        if !self.verbose || triggers == 0 {
            return;
        }
        eprintln!(
            "[engine]      replay {:<12} {}-wide ref{}: {:.1}% hit rate \
             ({} hits / {} triggers), {} armed, {} disarmed, {} suppressed",
            bench_name,
            job.machine.width,
            job.ref_input,
            replay.hits as f64 * 100.0 / triggers as f64,
            replay.hits,
            triggers,
            replay.armed_sites,
            replay.disarmed_sites,
            replay.suppressed_ticks,
        );
    }

    fn job_failed(&self, _index: usize, job: &SimJob, bench_name: &str, outcome: &JobResult) {
        let done = self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
        let what = match outcome {
            JobResult::Faulted { trap, cycle, .. } => {
                format!("FAULTED {trap} (cycle {cycle})")
            }
            JobResult::TimedOut {
                cycles, wall_ms, ..
            } => format!("TIMED OUT after {cycles} cycles / {wall_ms} ms"),
            JobResult::Failed { error, .. } => format!("FAILED {error}"),
            JobResult::Completed(_) => return,
        };
        let retried = if outcome.retried() {
            " (after retry)"
        } else {
            ""
        };
        eprintln!(
            "[engine] sim #{done:<4} {:<12} {}-wide ref{} {what}{retried}",
            bench_name, job.machine.width, job.ref_input,
        );
    }

    fn job_retried(&self, _index: usize, job: &SimJob, bench_name: &str) {
        eprintln!(
            "[engine] retrying {:<12} {}-wide ref{} after transient failure",
            bench_name, job.machine.width, job.ref_input,
        );
    }
}

//! Speedup sweeps (Figures 8–13) and the Table 2 metric rows.

use crate::glue::SuiteEngine;
use vanguard_core::engine::{PredictorKind, SweepCell};
use vanguard_core::ExperimentOutcome;
use vanguard_sim::MachineConfig;
use vanguard_workloads::BenchmarkSpec;

/// One benchmark's speedups across machine widths.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: String,
    /// Geomean speedup % over all REF inputs on 2/4/8-wide.
    pub all_inputs: [f64; 3],
    /// Best-REF-input speedup % on 2/4/8-wide.
    pub best_input: [f64; 3],
}

/// Runs one suite over the three widths (Figures 8–13).
///
/// The whole figure is enumerated as one flat cell matrix (benchmarks ×
/// widths) and executed on the engine's worker pool; profiles are shared
/// across the three widths of each benchmark.
///
/// # Panics
///
/// Panics if a workload faults in simulation (generated kernels never do).
pub fn suite_speedups(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<SpeedupRow> {
    let cells: Vec<SweepCell> = specs
        .iter()
        .flat_map(|spec| {
            let bench = eng.bench_id(spec);
            MachineConfig::all_widths()
                .into_iter()
                .map(move |machine| SweepCell {
                    bench,
                    machine,
                    predictor: PredictorKind::Combined24KB,
                })
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("workload simulates cleanly");
    specs
        .iter()
        .zip(outcomes.chunks_exact(3))
        .map(|(spec, outs)| {
            let mut all = [0.0; 3];
            let mut best = [0.0; 3];
            for (i, out) in outs.iter().enumerate() {
                all[i] = out.geomean_speedup_pct();
                best[i] = out.best_speedup_pct();
            }
            SpeedupRow {
                name: spec.name.clone(),
                all_inputs: all,
                best_input: best,
            }
        })
        .collect()
}

/// One Table 2 row (4-wide configuration, the paper's primary point).
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// SPD: % geomean speedup over all REF inputs (4-wide).
    pub spd: f64,
    /// PBC: % of static forward branches converted.
    pub pbc: f64,
    /// PDIH: avg % of dynamic instructions hoisted above converted
    /// branches.
    pub pdih: f64,
    /// ALPBB: average loads per basic block (static, over the kernel).
    pub alpbb: f64,
    /// ASPCB: average stall cycles per converted branch.
    pub aspcb: f64,
    /// PHI: avg % of successor-block instructions that were hoistable.
    pub phi: f64,
    /// MPPKI: branch mispredictions per thousand instructions (baseline).
    pub mppki: f64,
    /// PISCS: % increase in static code size.
    pub piscs: f64,
}

/// Computes the full Table 2 for a set of benchmarks on the 4-wide.
///
/// 4-wide compiled pairs and profiles are shared with any other figure
/// item already run on the same engine.
///
/// # Panics
///
/// Panics if a workload faults in simulation.
pub fn table2_rows(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<Table2Row> {
    let cells: Vec<SweepCell> = specs
        .iter()
        .map(|spec| SweepCell {
            bench: eng.bench_id(spec),
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("workload simulates cleanly");
    specs
        .iter()
        .zip(&cells)
        .zip(&outcomes)
        .map(|((spec, cell), out)| {
            let alpbb = static_alpbb(&eng.engine().benchmark(cell.bench).program);
            table2_row_from(spec, out, alpbb)
        })
        .collect()
}

fn table2_row_from(spec: &BenchmarkSpec, out: &ExperimentOutcome, alpbb: f64) -> Table2Row {
    // PHI: hoisted instructions relative to the successor-block work the
    // converted sites exposed.
    let hoisted: usize = out
        .report
        .converted
        .iter()
        .map(|s| s.hoisted_taken + s.hoisted_fallthrough)
        .sum();
    let per_side =
        spec.loads_per_block + 3 * spec.chase_loads + spec.hoistable_alu + 1 + spec.tail_alu;
    let exposed = out.report.converted.len() * 2 * per_side;
    let phi = if exposed == 0 {
        0.0
    } else {
        hoisted as f64 * 100.0 / exposed as f64
    };
    Table2Row {
        name: spec.name.clone(),
        spd: out.geomean_speedup_pct(),
        pbc: out.report.pbc(),
        pdih: out.pdih(),
        alpbb,
        aspcb: out.aspcb(),
        phi,
        mppki: out.mppki(),
        piscs: out.report.piscs(),
    }
}

/// Static average loads per basic block.
fn static_alpbb(program: &vanguard_isa::Program) -> f64 {
    let mut loads = 0usize;
    let mut blocks = 0usize;
    for (_, b) in program.iter() {
        if b.insts().is_empty() {
            continue;
        }
        blocks += 1;
        loads += b
            .insts()
            .iter()
            .filter(|i| matches!(i, vanguard_isa::Inst::Load { .. }))
            .count();
    }
    if blocks == 0 {
        0.0
    } else {
        loads as f64 / blocks as f64
    }
}

/// Renders Table 2 rows as an aligned text table.
pub fn format_table2(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>7} {:>6} {:>7} {:>6}",
        "Name", "SPD", "PBC", "PDIH", "ALPBB", "ASPCB", "PHI", "MPPKI", "PISCS"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>7.1} {:>6.1} {:>7.1} {:>6.1}",
            r.name, r.spd, r.pbc, r.pdih, r.alpbb, r.aspcb, r.phi, r.mppki, r.piscs
        );
    }
    s
}

/// Renders speedup rows (one figure's data) as an aligned text table.
pub fn format_speedups(rows: &[SpeedupRow], best: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>8} {:>8}",
        "Name", "2-wide", "4-wide", "8-wide"
    );
    for r in rows {
        let v = if best { r.best_input } else { r.all_inputs };
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%",
            r.name, v[0], v[1], v[2]
        );
    }
    let g: Vec<f64> = (0..3)
        .map(|i| {
            crate::glue::geomean_pct(
                &rows
                    .iter()
                    .map(|r| {
                        if best {
                            r.best_input[i]
                        } else {
                            r.all_inputs[i]
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let _ = writeln!(
        s,
        "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%",
        "GEOMEAN", g[0], g[1], g[2]
    );
    s
}

/// Checks the qualitative shape of the Figure 8 reproduction (SPEC06 INT,
/// all REF inputs) against the paper: the transformation must help on
/// average at every width, and the high-opportunity benchmarks the paper
/// singles out (h264ref, perlbench — long hoistable successor blocks,
/// highly biased forward branches) must beat the low-opportunity ones
/// (hmmer, bzip2, mcf) at the primary 4-wide configuration.
///
/// Returns every violated property, so a CI failure names all the broken
/// invariants at once instead of the first.
pub fn check_fig8_shape(rows: &[SpeedupRow]) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    let find = |name: &str| rows.iter().find(|r| r.name == name);

    for (i, width) in ["2-wide", "4-wide", "8-wide"].iter().enumerate() {
        let g = crate::glue::geomean_pct(&rows.iter().map(|r| r.all_inputs[i]).collect::<Vec<_>>());
        if g <= 0.0 || g.is_nan() {
            violations.push(format!(
                "geomean speedup at {width} is {g:.2}% (must be positive)"
            ));
        }
    }

    const HIGH: [&str; 2] = ["h264ref", "perlbench"];
    const LOW: [&str; 3] = ["hmmer", "bzip2", "mcf"];
    for name in HIGH.iter().chain(LOW.iter()) {
        if find(name).is_none() {
            violations.push(format!("benchmark {name} missing from Figure 8 rows"));
        }
    }
    for hi in HIGH {
        for lo in LOW {
            if let (Some(h), Some(l)) = (find(hi), find(lo)) {
                if h.all_inputs[1] <= l.all_inputs[1] {
                    violations.push(format!(
                        "4-wide ordering inverted: {hi} {:.2}% <= {lo} {:.2}%",
                        h.all_inputs[1], l.all_inputs[1]
                    ));
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glue::BenchScale;
    use vanguard_workloads::suite;

    #[test]
    fn one_int_benchmark_produces_a_speedup_row() {
        let specs = vec![suite::spec2006_int().remove(0)]; // h264ref
        let mut eng = SuiteEngine::new(BenchScale::Quick);
        let rows = suite_speedups(&mut eng, &specs);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.name, "h264ref");
        // The flagship benchmark must show a clear 4-wide win.
        assert!(
            r.all_inputs[1] > 2.0,
            "h264ref 4-wide speedup {:.2}%",
            r.all_inputs[1]
        );
        assert!(r.best_input[1] >= r.all_inputs[1] - 1e-9);
    }

    #[test]
    fn table2_row_metrics_are_sane() {
        let specs = vec![suite::spec2006_int().remove(0)];
        let mut eng = SuiteEngine::new(BenchScale::Quick);
        let rows = table2_rows(&mut eng, &specs);
        // Table 2 shares the 4-wide artifacts: exactly one profile and
        // one compiled pair for the single benchmark.
        assert_eq!(eng.engine().stats().profile_misses, 1);
        assert_eq!(eng.engine().stats().compile_misses, 1);
        let r = &rows[0];
        assert!(r.pbc > 30.0 && r.pbc <= 100.0, "PBC {}", r.pbc);
        assert!(r.piscs > 0.0 && r.piscs < 60.0, "PISCS {}", r.piscs);
        assert!(r.phi > 0.0 && r.phi <= 100.0, "PHI {}", r.phi);
        assert!(r.mppki > 0.0, "MPPKI {}", r.mppki);
        assert!(r.alpbb > 0.5, "ALPBB {}", r.alpbb);
        let text = format_table2(&rows);
        assert!(text.contains("h264ref"));
    }

    fn row(name: &str, pct: f64) -> SpeedupRow {
        SpeedupRow {
            name: name.to_string(),
            all_inputs: [pct; 3],
            best_input: [pct; 3],
        }
    }

    #[test]
    fn fig8_shape_accepts_paper_like_rows() {
        let rows = vec![
            row("h264ref", 12.8),
            row("perlbench", 15.0),
            row("mcf", 5.0),
            row("bzip2", 2.2),
            row("hmmer", 2.0),
        ];
        assert!(check_fig8_shape(&rows).is_ok());
    }

    #[test]
    fn fig8_shape_rejects_negative_geomean_and_inverted_ordering() {
        // All speedups negative: three geomean violations plus six
        // ordering inversions (every high <= every low at 4-wide).
        let rows = vec![
            row("h264ref", -3.0),
            row("perlbench", -2.0),
            row("mcf", -1.0),
            row("bzip2", -0.5),
            row("hmmer", -0.2),
        ];
        let violations = check_fig8_shape(&rows).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("must be positive")));
        assert!(violations.iter().any(|v| v.contains("ordering inverted")));
        assert_eq!(violations.len(), 9, "{violations:?}");
    }

    #[test]
    fn fig8_shape_reports_missing_benchmarks() {
        let rows = vec![row("h264ref", 10.0)];
        let violations = check_fig8_shape(&rows).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.contains("perlbench") && v.contains("missing")));
    }
}

//! # vanguard-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * Figures 2/3 — predictability vs. bias of the top-75 forward branches;
//! * Table 1 — machine configurations;
//! * Table 2 — per-benchmark SPD/PBC/PDIH/ALPBB/ASPCB/PHI/MPPKI/PISCS;
//! * Figures 8–13 — per-suite speedups (2/4/8-wide; all/best REF inputs);
//! * Figure 14 — % increase in issued instructions;
//! * §5.3 — branch-predictor sensitivity ladder;
//! * §6.1 — I$ ablation (32 KB → 24 KB) and code-size effects.
//!
//! Everything is callable as a library (the `figures` binary is a thin
//! dispatcher) and returns structured rows so tests can assert the
//! *shape* of the reproduction.

#![warn(missing_docs)]

//!
//! All sweeps run on the [`vanguard_core::engine`] worker pool through a
//! shared [`SuiteEngine`], so profiles and compiled pairs are computed
//! once and reused across every figure of a harness invocation.

mod ablation;
pub mod faultinject;
mod figures;
pub mod fuzz;
mod glue;
mod progress;
mod speedups;
pub mod sweep;
pub mod sweepstatus;

pub use ablation::{ablation_rows, check_ablation_shape, format_ablation, AblationRow};
pub use figures::{
    fig14_rows, fig2_fig3_series, icache_ablation, sensitivity_rows, table1_text, BiasPredPoint,
    IcacheAblationRow, IssuedRow, SensitivityRow,
};
pub use glue::{geomean_pct, quick_spec, to_experiment_input, BenchScale, SuiteEngine};
pub use progress::StderrProgress;
pub use speedups::{
    check_fig8_shape, format_speedups, format_table2, suite_speedups, table2_rows, SpeedupRow,
    Table2Row,
};

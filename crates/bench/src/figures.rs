//! Figures 2/3, Figure 14, Table 1, §5.3 sensitivity, §6.1 I$ ablation.

use crate::glue::SuiteEngine;
use vanguard_core::engine::{SimJob, SweepCell, Variant};
use vanguard_core::PredictorKind;
use vanguard_sim::MachineConfig;
use vanguard_workloads::BenchmarkSpec;

/// One point of the Figure 2/3 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BiasPredPoint {
    /// Rank in the bias-sorted order (0 = most biased).
    pub rank: usize,
    /// Measured bias.
    pub bias: f64,
    /// Measured predictability (profiling-predictor accuracy).
    pub predictability: f64,
    /// Dynamic executions.
    pub executed: u64,
}

/// Regenerates a Figure 2/3 series: the top-`limit` most-executed forward
/// branches pooled across `specs`, profiled with the baseline predictor,
/// sorted by descending bias.
///
/// # Panics
///
/// Panics if a profiling run faults (generated kernels never do).
pub fn fig2_fig3_series(
    eng: &mut SuiteEngine,
    specs: &[BenchmarkSpec],
    limit: usize,
) -> Vec<BiasPredPoint> {
    let mut pool: Vec<(f64, f64, u64)> = Vec::new();
    for spec in specs {
        let profile = eng
            .profile(spec, PredictorKind::Combined24KB)
            .expect("profiling succeeds");
        let id = eng.bench_id(spec);
        let input = eng.engine().benchmark(id);
        // Forward sites only: the loop latch is the one backward branch.
        let cfg = vanguard_ir::Cfg::build(&input.program);
        for (block, stats) in profile.iter() {
            if cfg.branch_direction(&input.program, block)
                != Some(vanguard_ir::BranchDirection::Forward)
            {
                continue;
            }
            pool.push((stats.bias(), stats.predictability(), stats.executed));
        }
    }
    // Top-N by executions, then sort by descending bias (the figures' X).
    pool.sort_by_key(|&(_, _, execs)| std::cmp::Reverse(execs));
    pool.truncate(limit);
    pool.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    pool.into_iter()
        .enumerate()
        .map(|(rank, (bias, predictability, executed))| BiasPredPoint {
            rank,
            bias,
            predictability,
            executed,
        })
        .collect()
}

/// One Figure 14 row: the wrong-path/issue overhead of the transformation.
#[derive(Clone, Debug)]
pub struct IssuedRow {
    /// Benchmark name.
    pub name: String,
    /// % increase in instructions issued (4-wide experimental vs 4-wide
    /// baseline).
    pub increase_pct: f64,
}

/// Regenerates Figure 14.
///
/// # Panics
///
/// Panics if a workload faults in simulation.
pub fn fig14_rows(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<IssuedRow> {
    let cells: Vec<SweepCell> = specs
        .iter()
        .map(|spec| SweepCell {
            bench: eng.bench_id(spec),
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("workload simulates cleanly");
    specs
        .iter()
        .zip(&outcomes)
        .map(|(spec, out)| IssuedRow {
            name: spec.name.clone(),
            increase_pct: out.issued_increase_pct(),
        })
        .collect()
}

/// One §5.3 sensitivity row.
#[derive(Clone, Debug)]
pub struct SensitivityRow {
    /// Benchmark name.
    pub name: String,
    /// Predictor rung label.
    pub predictor: &'static str,
    /// Baseline misprediction rate (fraction of conditionals).
    pub mispredict_rate: f64,
    /// Speedup % of the transformation over the baseline *with this
    /// predictor* on both sides.
    pub speedup_pct: f64,
}

/// Regenerates the §5.3 predictor-sensitivity sweep for the given
/// benchmarks (the paper uses astar, sjeng, gobmk, mcf) over the full
/// ladder.
///
/// # Panics
///
/// Panics if a workload faults in simulation.
pub fn sensitivity_rows(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<SensitivityRow> {
    // Flat (benchmark × rung) matrix: every rung's profile + compile +
    // sims run concurrently on the pool.
    let ladder = vanguard_bpred::ladder();
    let cells: Vec<SweepCell> = specs
        .iter()
        .flat_map(|spec| {
            let bench = eng.bench_id(spec);
            ladder.iter().map(move |&rung| SweepCell {
                bench,
                machine: MachineConfig::four_wide(),
                predictor: rung,
            })
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("workload simulates cleanly");
    let mut rows = Vec::new();
    for (spec, outs) in specs.iter().zip(outcomes.chunks_exact(ladder.len())) {
        for (rung, out) in ladder.iter().zip(outs) {
            let miss_rate = 1.0
                - out
                    .runs
                    .iter()
                    .map(|r| r.base.prediction_accuracy())
                    .sum::<f64>()
                    / out.runs.len() as f64;
            rows.push(SensitivityRow {
                name: spec.name.clone(),
                predictor: rung.label(),
                mispredict_rate: miss_rate,
                speedup_pct: out.geomean_speedup_pct(),
            });
        }
    }
    rows
}

/// One §6.1 I$-ablation row.
#[derive(Clone, Debug)]
pub struct IcacheAblationRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles with the 32 KB I$.
    pub cycles_32k: u64,
    /// Baseline cycles with the 24 KB I$.
    pub cycles_24k: u64,
    /// Fraction of I$ misses occurring under a misprediction redirect
    /// (32 KB configuration, transformed program).
    pub miss_under_mispredict: f64,
}

impl IcacheAblationRow {
    /// % slowdown from shrinking the I$ by 25%.
    pub fn slowdown_pct(&self) -> f64 {
        if self.cycles_32k == 0 {
            return 0.0;
        }
        (self.cycles_24k as f64 / self.cycles_32k as f64 - 1.0) * 100.0
    }
}

/// Regenerates the §6.1 I$ experiment: transformed programs run on the
/// Table 1 machine and on the 24 KB-I$ variant.
///
/// # Panics
///
/// Panics if a workload faults in simulation.
pub fn icache_ablation(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<IcacheAblationRow> {
    // Only the transformed variant is needed, so this sweep is a raw job
    // list rather than full cells. The two machines differ only in I$
    // size, not width, so they share one cached compiled pair.
    let jobs: Vec<SimJob> = specs
        .iter()
        .flat_map(|spec| {
            let bench = eng.bench_id(spec);
            [
                MachineConfig::four_wide(),
                MachineConfig::four_wide().with_reduced_icache(),
            ]
            .into_iter()
            .map(move |machine| SimJob {
                bench,
                ref_input: 0,
                machine,
                predictor: PredictorKind::Combined24KB,
                variant: Variant::Transformed,
            })
        })
        .collect();
    let results = eng.run_jobs(&jobs);
    specs
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(spec, pair)| {
            let (s32, s24) = (
                pair[0].expect_completed().stats,
                pair[1].expect_completed().stats,
            );
            let total_icache_misses = s32.mem.l1i.misses.max(1);
            IcacheAblationRow {
                name: spec.name.clone(),
                cycles_32k: s32.cycles,
                cycles_24k: s24.cycles,
                miss_under_mispredict: s32.icache_miss_under_mispredict as f64
                    / total_icache_misses as f64,
            }
        })
        .collect()
}

/// Renders Table 1 (the machine configurations) as text.
pub fn table1_text() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let c = MachineConfig::four_wide();
    let _ = writeln!(s, "Key Structures     Configuration Parameters");
    let _ = writeln!(
        s,
        "Bpred              PTLSim default: GShare, 24 KB 3-table direction predictor,"
    );
    let _ = writeln!(
        s,
        "                   4K-entry BTB, 64-entry RAS  ({} direction bits modelled)",
        PredictorKind::Combined24KB.build().storage_bits()
    );
    let _ = writeln!(
        s,
        "Front-End          {} stages, 2/4/8-wide fetch/decode/dispatch, {}-entry FetchBuffer",
        c.fe_depth, c.fetch_buffer
    );
    let _ = writeln!(s, "Execution Ports    2/4/8 (experimentally varied)");
    let _ = writeln!(
        s,
        "Functional Units   up to {}x LD/ST, {}x INT, {}x FP, 1-cycle bypass",
        c.fu_ldst, c.fu_int, c.fu_fp
    );
    let m = c.mem;
    let _ = writeln!(
        s,
        "L1 Caches          {}-way {} KB L1-D$, {}-way {} KB L1-I$, {} B lines, {}-cycle",
        m.l1d.ways,
        m.l1d.size_bytes / 1024,
        m.l1i.ways,
        m.l1i.size_bytes / 1024,
        m.l1d.line_bytes,
        m.l1d.latency
    );
    let _ = writeln!(
        s,
        "L2 Cache           {}-way {} KB unified, {}-cycle",
        m.l2.ways,
        m.l2.size_bytes / 1024,
        m.l2.latency
    );
    let _ = writeln!(
        s,
        "L3 Cache           {}-way {} MB LLC, {}-cycle",
        m.l3.ways,
        m.l3.size_bytes / (1024 * 1024),
        m.l3.latency
    );
    let _ = writeln!(
        s,
        "Miss Handling      {}-entry Miss Buffer, {}-entry Load Fill Request Queue",
        m.miss_buffer, m.lfrq
    );
    let _ = writeln!(s, "Main Memory        {}-cycle latency", m.memory_latency);
    let _ = writeln!(
        s,
        "DBB                {}-entry, 24 bits/entry, 4-bit index (Section 4)",
        c.dbb_entries
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_workloads::suite;

    #[test]
    fn fig2_series_shows_predictability_exceeding_bias() {
        // Two benchmarks are enough to see the shape in a unit test.
        let specs: Vec<_> = suite::spec2006_int().into_iter().take(2).collect();
        let mut eng = SuiteEngine::new(crate::glue::BenchScale::Quick);
        let pts = fig2_fig3_series(&mut eng, &specs, 16);
        assert!(!pts.is_empty());
        // Bias-sorted descending.
        for w in pts.windows(2) {
            assert!(w[0].bias >= w[1].bias - 1e-9);
        }
        // The tail (low-bias) must contain points where predictability
        // clearly exceeds bias — the paper's motivating population.
        let tail_gap = pts
            .iter()
            .rev()
            .take(pts.len() / 2)
            .map(|p| p.predictability - p.bias)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(tail_gap > 0.15, "max tail gap {tail_gap}");
    }

    #[test]
    fn table1_mentions_every_structure() {
        let t = table1_text();
        for needle in ["GShare", "FetchBuffer", "L1-D$", "LLC", "140-cycle", "DBB"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }
}

#[cfg(test)]
mod harness_tests {
    use super::*;
    use crate::glue::BenchScale;
    use vanguard_workloads::suite;

    fn tiny() -> Vec<BenchmarkSpec> {
        vec![suite::spec2006_int().remove(0)]
    }

    #[test]
    fn fig14_reports_bounded_overhead() {
        let mut eng = SuiteEngine::new(BenchScale::Quick);
        let rows = fig14_rows(&mut eng, &tiny());
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].increase_pct > -5.0 && rows[0].increase_pct < 30.0,
            "issued increase {:.2}%",
            rows[0].increase_pct
        );
    }

    #[test]
    fn sensitivity_covers_the_full_ladder() {
        let mut eng = SuiteEngine::new(BenchScale::Quick);
        let rows = sensitivity_rows(&mut eng, &tiny());
        assert_eq!(rows.len(), vanguard_bpred::ladder().len());
        for r in &rows {
            assert!(r.mispredict_rate >= 0.0 && r.mispredict_rate < 0.5, "{r:?}");
        }
        // The weakest predictor must have the worst miss rate.
        let first = rows.first().unwrap();
        let best = rows
            .iter()
            .map(|r| r.mispredict_rate)
            .fold(f64::INFINITY, f64::min);
        assert!(first.mispredict_rate >= best);
    }

    #[test]
    fn icache_ablation_reports_conjunction_statistic() {
        let mut eng = SuiteEngine::new(BenchScale::Quick);
        let rows = icache_ablation(&mut eng, &tiny());
        // One benchmark, one width: a single compiled pair serves both
        // I$ configurations.
        assert_eq!(eng.engine().stats().compile_misses, 1);
        let r = &rows[0];
        // Tiny kernels: shrinking the I$ cannot slow them down much.
        assert!(
            r.slowdown_pct().abs() < 2.0,
            "slowdown {:.2}%",
            r.slowdown_pct()
        );
        // But the miss-under-mispredict fraction is measurable.
        assert!((0.0..=1.0).contains(&r.miss_under_mispredict));
    }
}

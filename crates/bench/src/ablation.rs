//! The transform-pass ablation: head-to-head cells over the quick or
//! full suite, one column per [`TransformKind`].
//!
//! Every cell is (benchmark × 4-wide × Combined24KB × kind); the
//! baseline of every pair is identical (PGO layout + scheduling, no
//! transformation), so each column's speedup is directly comparable:
//! `vanguard` is the paper's §3 decomposition, `meld` the Li et al.
//! if-conversion rival, `shadow` the Pepi et al. decode-time exposure
//! model (decomposition with zero code motion), and `stacked` the
//! vanguard ∘ meld composition. Profiles are shared across all four
//! columns of a benchmark (the profile key is transform-independent);
//! compiled pairs are keyed per variant and can never collide.

use crate::glue::SuiteEngine;
use vanguard_core::engine::{PredictorKind, SweepCell};
use vanguard_core::{TransformKind, TransformOptions};
use vanguard_sim::MachineConfig;
use vanguard_workloads::BenchmarkSpec;

/// One benchmark's row of the ablation table, indexed like
/// [`TransformKind::ALL`].
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Geomean speedup % over all REF inputs on the 4-wide, per kind.
    pub speedup_pct: [f64; 4],
    /// Static sites changed per kind: converted branch sites for the
    /// decomposing passes, melded hammocks for meld, both for stacked.
    pub sites: [usize; 4],
}

/// Runs the head-to-head ablation over `specs` on the 4-wide machine.
///
/// # Panics
///
/// Panics if a workload faults in simulation (generated kernels never
/// do).
pub fn ablation_rows(eng: &mut SuiteEngine, specs: &[BenchmarkSpec]) -> Vec<AblationRow> {
    let cells: Vec<SweepCell> = specs
        .iter()
        .map(|spec| SweepCell {
            bench: eng.bench_id(spec),
            machine: MachineConfig::four_wide(),
            predictor: PredictorKind::Combined24KB,
        })
        .collect();
    let mut rows: Vec<AblationRow> = specs
        .iter()
        .map(|spec| AblationRow {
            name: spec.name.clone(),
            speedup_pct: [0.0; 4],
            sites: [0; 4],
        })
        .collect();
    for (k, kind) in TransformKind::ALL.into_iter().enumerate() {
        let options = TransformOptions {
            kind,
            ..TransformOptions::default()
        };
        let outcomes = eng
            .run_cells_with(&cells, &options)
            .expect("workload simulates cleanly");
        for (row, out) in rows.iter_mut().zip(&outcomes) {
            row.speedup_pct[k] = out.geomean_speedup_pct();
            row.sites[k] = out.report.converted.len() + out.report.melded;
        }
    }
    rows
}

/// Renders the ablation rows as an aligned text table with a GEOMEAN
/// line (speedup % per column; site counts in parentheses).
pub fn format_ablation(rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "Name", "vanguard", "meld", "shadow", "stacked"
    );
    for r in rows {
        let _ = write!(s, "{:<12}", r.name);
        for k in 0..4 {
            let _ = write!(s, " {:>7.1}% ({:>3})", r.speedup_pct[k], r.sites[k]);
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<12}", "GEOMEAN");
    for k in 0..4 {
        let g =
            crate::glue::geomean_pct(&rows.iter().map(|r| r.speedup_pct[k]).collect::<Vec<_>>());
        let _ = write!(s, " {:>7.1}% {:>5}", g, "");
    }
    let _ = writeln!(s);
    s
}

/// Checks the qualitative shape of the ablation against the papers'
/// claims on this suite (predictable-unbiased branch mix):
///
/// * the vanguard geomean beats the meld geomean (the suite's sites are
///   *predictable*; if-converting them wastes fetch bandwidth and buys
///   no misprediction win);
/// * vanguard also beats shadow (early redirect alone, with no hoisted
///   MLP, captures only part of the win);
/// * every decomposing column (vanguard, shadow, stacked) converts at
///   least one site on every benchmark.
///
/// Returns every violated property.
pub fn check_ablation_shape(rows: &[AblationRow]) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    let geo = |k: usize| {
        crate::glue::geomean_pct(&rows.iter().map(|r| r.speedup_pct[k]).collect::<Vec<_>>())
    };
    let (vanguard, meld, shadow) = (geo(0), geo(1), geo(2));
    if vanguard <= meld {
        violations.push(format!(
            "vanguard geomean {vanguard:.2}% <= meld geomean {meld:.2}% on a \
             predictable-biased suite"
        ));
    }
    if vanguard <= shadow {
        violations.push(format!(
            "vanguard geomean {vanguard:.2}% <= shadow geomean {shadow:.2}% (hoisting \
             must add speedup over early redirect alone)"
        ));
    }
    for r in rows {
        for (k, label) in [(0usize, "vanguard"), (2, "shadow"), (3, "stacked")] {
            if r.sites[k] == 0 {
                violations.push(format!("{}: {label} converted no sites", r.name));
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

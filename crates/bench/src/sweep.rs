//! Sharded, resumable sweep service (DESIGN.md §7.11).
//!
//! A *sweep* is the paper's fig8-shaped grid — suite × widths ×
//! predictors × transform kinds — flattened to a deterministic list of
//! [`PlannedJob`]s, each keyed by the engine's content-addressed
//! [`job_key`](vanguard_core::engine::Engine::job_key). The service
//! runs that list across `VANGUARD_SHARDS` worker *processes* that
//! steal work off a shared [`Journal`]:
//!
//! * every completed job appends one checksummed record (key →
//!   encoded outcome) to the journal, under an exclusive file lock;
//! * workers claim jobs with non-blocking OS file locks in the shared
//!   `VANGUARD_CACHE_DIR` store ([`DiskCache::try_claim_leased`]), so
//!   two workers never run the same job and a `SIGKILL`ed worker's
//!   claim evaporates with it;
//! * claims carry a *lease* (`VANGUARD_CLAIM_LEASE_MS`): the holder's
//!   heartbeat thread refreshes the claim file's mtime, and a live
//!   worker treats a claim whose lease expired as dead and **steals**
//!   the job — [`Journal::append_new`] dedups under the append lock,
//!   so even a wedged-then-revived holder can't journal a duplicate;
//! * compiled pairs and program images are content-addressed in the
//!   same store, so concurrent workers share artifacts instead of
//!   recompiling them;
//! * when a whole worker fleet dies mid-sweep, the parent respawns it
//!   (up to [`ShardOptions::max_respawns`]) — the new fleet steals the
//!   dead claims and finishes with no manual `resume`.
//!
//! The daemon adds poison-request quarantine (a request that repeatedly
//! crashes its workers moves to `spool/quarantine/` with a replayable
//! reproducer after `VANGUARD_SWEEP_MAX_STRIKES` strikes) and publishes
//! a [`status.json`](crate::sweepstatus) endpoint for pollers.
//!
//! The invariant the whole design serves: the merged result of a
//! sharded run — at any shard count, across any kill/resume split — is
//! **byte-identical** to a serial single-process run of the same
//! request. The `kill-and-resume` fault class and the CI `sweep-resume`
//! job enforce it.
//!
//! The module is the library behind the `vanguard-sweep` binary (one-
//! shot runs, `--resume`, and a request-file-drop daemon) and the
//! kill-and-resume scenario of [`crate::faultinject`].

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vanguard_core::engine::{
    Engine, FaultPolicy, JobResult, PredictorKind, SimJob, SweepCell, Variant,
    DEFAULT_MAX_PROFILE_STEPS,
};
use vanguard_core::journal::COMPACT_BYTES_ENV;
use vanguard_core::{
    ClaimAttempt, DiskCache, Journal, JournalSnapshot, TransformKind, TransformOptions,
};
use vanguard_sim::{MachineConfig, SimStats};
use vanguard_workloads::suite;

use crate::sweepstatus::{DaemonStatus, HEARTBEAT_PREFIX};
use crate::{quick_spec, to_experiment_input, BenchScale};

/// First line of a sweep request file.
pub const REQUEST_MAGIC: &str = "VGS1";

/// Claim-file namespace for in-flight sweep jobs (public so the fault
/// harness can wedge a claim and prove the lease-steal path).
pub const JOB_CLAIM_TAG: &str = "job";

/// Env var marking a process as a sweep worker (set by the parent on
/// the re-exec'd children; checked by [`maybe_run_worker`]).
pub const WORKER_ENV: &str = "VANGUARD_SWEEP_WORKER";
/// Env var carrying the rendered request text to a worker.
pub const REQUEST_ENV: &str = "VANGUARD_SWEEP_REQUEST";
/// Env var carrying the journal path to a worker.
pub const JOURNAL_ENV: &str = "VANGUARD_SWEEP_JOURNAL";
/// Env var: per-job sleep in milliseconds before running, so a fault
/// injector can reliably observe (and kill) a sweep mid-flight.
pub const THROTTLE_ENV: &str = "VANGUARD_SWEEP_THROTTLE_MS";
/// Env var: default worker-process count for the `vanguard-sweep`
/// binary and the daemon.
pub const SHARDS_ENV: &str = "VANGUARD_SHARDS";
/// Env var: worker executable override for harnesses whose own binary
/// has no [`maybe_run_worker`] hook (libtest binaries must never
/// re-exec themselves — that would recursively run the test suite).
pub const WORKER_EXE_ENV: &str = "VANGUARD_SWEEP_WORKER_EXE";
/// Env var: claim-lease duration in milliseconds. A claim whose
/// heartbeat is older than this is treated as dead and its job stolen.
pub const LEASE_ENV: &str = "VANGUARD_CLAIM_LEASE_MS";
/// Default claim lease: long enough that a healthy worker's heartbeat
/// (lease/4) never lapses under load, short enough that a dead shard's
/// jobs are stolen within a minute.
pub const DEFAULT_LEASE_MS: u64 = 30_000;
/// Env var: crashes a spool request survives before quarantine.
pub const MAX_STRIKES_ENV: &str = "VANGUARD_SWEEP_MAX_STRIKES";
/// Default strike limit before a crashing request is quarantined.
pub const DEFAULT_MAX_STRIKES: u32 = 3;
/// Env var (fault injection): once the journal holds this many records,
/// workers stop taking jobs and wait for the parent's SIGKILL (released
/// by the marker file from [`kill_marker`]). Without the hold the fleet
/// races the parent's poll loop and can finish the sweep before the
/// kill lands, turning every kill-based gate flaky under load.
pub const KILL_HOLD_ENV: &str = "VANGUARD_SWEEP_KILL_HOLD";

/// The marker the parent drops next to the journal right before firing
/// its `kill_after` SIGKILL: held workers (see [`KILL_HOLD_ENV`])
/// resume when it appears, so wound-mode survivors finish the sweep.
pub fn kill_marker(journal: &Path) -> PathBuf {
    PathBuf::from(format!("{}.kill-fired", journal.display()))
}

/// The claim lease from `VANGUARD_CLAIM_LEASE_MS` (default
/// [`DEFAULT_LEASE_MS`]; zero and garbage fall back to the default).
pub fn claim_lease_from_env() -> Duration {
    let ms = std::env::var(LEASE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_LEASE_MS);
    Duration::from_millis(ms)
}

/// Stable CLI name of a predictor rung.
pub fn predictor_name(p: PredictorKind) -> &'static str {
    match p {
        PredictorKind::Bimodal8K => "bimodal8k",
        PredictorKind::Combined6KB => "combined6kb",
        PredictorKind::Combined24KB => "combined24kb",
        PredictorKind::TwoLevelLocal => "twolevel-local",
        PredictorKind::Tage32KB => "tage32kb",
        PredictorKind::IslTage64KB => "isltage64kb",
    }
}

/// Parses a [`predictor_name`] back to the rung.
pub fn parse_predictor(s: &str) -> Option<PredictorKind> {
    [
        PredictorKind::Bimodal8K,
        PredictorKind::Combined6KB,
        PredictorKind::Combined24KB,
        PredictorKind::TwoLevelLocal,
        PredictorKind::Tage32KB,
        PredictorKind::IslTage64KB,
    ]
    .into_iter()
    .find(|&p| predictor_name(p) == s)
}

fn machine_for_width(width: usize) -> Option<MachineConfig> {
    match width {
        2 => Some(MachineConfig::two_wide()),
        4 => Some(MachineConfig::four_wide()),
        8 => Some(MachineConfig::eight_wide()),
        _ => None,
    }
}

/// One sweep request: the grid to run, in canonical `VGS1` text form.
///
/// ```text
/// VGS1
/// suite spec2006-int 2
/// widths 4
/// predictors combined24kb
/// transforms vanguard meld
/// scale quick
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRequest {
    /// Benchmark suite name (`spec2006-int`, `spec2006-fp`,
    /// `spec2000-int`, `spec2000-fp`).
    pub suite: String,
    /// Number of suite benchmarks to take (0 = the whole suite).
    pub count: usize,
    /// Machine widths (2, 4, 8).
    pub widths: Vec<usize>,
    /// Predictor rungs.
    pub predictors: Vec<PredictorKind>,
    /// Transform kinds.
    pub kinds: Vec<TransformKind>,
    /// Iteration scale.
    pub scale: BenchScale,
}

impl SweepRequest {
    /// A CI-sized request: two benchmarks, one width, baseline
    /// predictor, vanguard + meld — 8 jobs, seconds of work.
    pub fn ci_quick() -> SweepRequest {
        SweepRequest {
            suite: "spec2006-int".into(),
            count: 2,
            widths: vec![4],
            predictors: vec![PredictorKind::Combined24KB],
            kinds: vec![TransformKind::Vanguard, TransformKind::Meld],
            scale: BenchScale::Quick,
        }
    }

    /// Parses the `VGS1` text form. Unknown or duplicate lines are
    /// errors; `widths`/`predictors`/`transforms`/`scale` default to
    /// `4` / `combined24kb` / `vanguard` / `quick` when absent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<SweepRequest, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(REQUEST_MAGIC) {
            return Err(format!("request must start with `{REQUEST_MAGIC}`"));
        }
        let mut suite: Option<(String, usize)> = None;
        let mut widths: Option<Vec<usize>> = None;
        let mut predictors: Option<Vec<PredictorKind>> = None;
        let mut kinds: Option<Vec<TransformKind>> = None;
        let mut scale: Option<BenchScale> = None;
        for line in lines {
            let (tag, rest) = line
                .split_once(' ')
                .ok_or(format!("malformed line `{line}`"))?;
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let dup = |n: &str| format!("duplicate `{n}` line");
            match tag {
                "suite" => {
                    if suite.is_some() {
                        return Err(dup("suite"));
                    }
                    let name = fields.first().ok_or("suite line needs a name")?.to_string();
                    let count = match fields.get(1) {
                        Some(c) => c.parse().map_err(|e| format!("suite count: {e}"))?,
                        None => 0,
                    };
                    suite = Some((name, count));
                }
                "widths" => {
                    if widths.is_some() {
                        return Err(dup("widths"));
                    }
                    let parsed: Result<Vec<usize>, String> = fields
                        .iter()
                        .map(|f| {
                            let w: usize = f.parse().map_err(|e| format!("width: {e}"))?;
                            machine_for_width(w).ok_or(format!("unsupported width {w}"))?;
                            Ok(w)
                        })
                        .collect();
                    widths = Some(parsed?);
                }
                "predictors" => {
                    if predictors.is_some() {
                        return Err(dup("predictors"));
                    }
                    let parsed: Result<Vec<PredictorKind>, String> = fields
                        .iter()
                        .map(|f| parse_predictor(f).ok_or(format!("unknown predictor `{f}`")))
                        .collect();
                    predictors = Some(parsed?);
                }
                "transforms" => {
                    if kinds.is_some() {
                        return Err(dup("transforms"));
                    }
                    let parsed: Result<Vec<TransformKind>, String> = fields
                        .iter()
                        .map(|f| TransformKind::parse(f).ok_or(format!("unknown transform `{f}`")))
                        .collect();
                    kinds = Some(parsed?);
                }
                "scale" => {
                    if scale.is_some() {
                        return Err(dup("scale"));
                    }
                    scale = Some(match fields.first() {
                        Some(&"quick") => BenchScale::Quick,
                        Some(&"full") => BenchScale::Full,
                        other => return Err(format!("unknown scale {other:?}")),
                    });
                }
                other => return Err(format!("unknown request line `{other}`")),
            }
        }
        let (suite, count) = suite.ok_or("request has no `suite` line")?;
        let request = SweepRequest {
            suite,
            count,
            widths: widths.unwrap_or_else(|| vec![4]),
            predictors: predictors.unwrap_or_else(|| vec![PredictorKind::Combined24KB]),
            kinds: kinds.unwrap_or_else(|| vec![TransformKind::Vanguard]),
            scale: scale.unwrap_or(BenchScale::Quick),
        };
        if request.widths.is_empty() || request.predictors.is_empty() || request.kinds.is_empty() {
            return Err("request has an empty axis".into());
        }
        Ok(request)
    }

    /// Renders the canonical `VGS1` text form ([`SweepRequest::parse`]
    /// round-trips it).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{REQUEST_MAGIC}");
        let _ = writeln!(out, "suite {} {}", self.suite, self.count);
        let widths: Vec<String> = self.widths.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(out, "widths {}", widths.join(" "));
        let preds: Vec<&str> = self.predictors.iter().map(|&p| predictor_name(p)).collect();
        let _ = writeln!(out, "predictors {}", preds.join(" "));
        let kinds: Vec<&str> = self.kinds.iter().map(|k| k.name()).collect();
        let _ = writeln!(out, "transforms {}", kinds.join(" "));
        let _ = writeln!(
            out,
            "scale {}",
            match self.scale {
                BenchScale::Quick => "quick",
                BenchScale::Full => "full",
            }
        );
        out
    }
}

/// One planned simulation of a sweep: the engine job plus the transform
/// kind that parameterizes it, keyed for the journal.
#[derive(Clone, Debug)]
pub struct PlannedJob {
    /// Deterministic content-addressed key (journal + claim key).
    pub key: u64,
    /// The transform kind this job runs under.
    pub kind: TransformKind,
    /// The engine job.
    pub job: SimJob,
}

fn kind_options(kind: TransformKind) -> TransformOptions {
    TransformOptions {
        kind,
        ..TransformOptions::default()
    }
}

/// A built sweep: the request resolved against real workloads, with the
/// full deterministic job plan. Construction registers the benchmarks
/// (cheap); no simulation happens until jobs run.
#[derive(Debug)]
pub struct Sweep {
    request: SweepRequest,
    engine: Engine,
    bench_names: Vec<String>,
    plan: Vec<PlannedJob>,
}

impl Sweep {
    /// Builds the sweep under a fault policy (the policy's `cache_dir`
    /// is what workers share artifacts and job claims through).
    ///
    /// # Errors
    ///
    /// Returns a description of an unknown suite or an internal key
    /// collision (two planned jobs hashing identically — a bug, never
    /// an input condition).
    pub fn build(request: SweepRequest, policy: FaultPolicy) -> Result<Sweep, String> {
        let specs = match request.suite.as_str() {
            "spec2006-int" => suite::spec2006_int(),
            "spec2006-fp" => suite::spec2006_fp(),
            "spec2000-int" => suite::spec2000_int(),
            "spec2000-fp" => suite::spec2000_fp(),
            other => return Err(format!("unknown suite `{other}`")),
        };
        let take = if request.count == 0 {
            specs.len()
        } else {
            request.count.min(specs.len())
        };
        let mut engine = Engine::new();
        engine.set_fault_policy(policy);
        let mut bench_ids = Vec::new();
        let mut bench_names = Vec::new();
        for spec in specs.into_iter().take(take) {
            bench_names.push(spec.name.clone());
            let input = to_experiment_input(quick_spec(spec, request.scale).build());
            bench_ids.push(engine.add_benchmark(input));
        }
        // The plan order IS the merged-output order: kind, then
        // predictor, then width, then (bench, ref, variant) exactly as
        // `jobs_for_cells` flattens them. Deterministic by construction.
        let mut plan = Vec::new();
        for &kind in &request.kinds {
            let options = kind_options(kind);
            for &predictor in &request.predictors {
                for &width in &request.widths {
                    let machine = machine_for_width(width).expect("widths validated at parse");
                    let cells: Vec<SweepCell> = bench_ids
                        .iter()
                        .map(|&bench| SweepCell {
                            bench,
                            machine,
                            predictor,
                        })
                        .collect();
                    for job in engine.jobs_for_cells(&cells) {
                        plan.push(PlannedJob {
                            key: engine.job_key(&job, &options, DEFAULT_MAX_PROFILE_STEPS),
                            kind,
                            job,
                        });
                    }
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for pj in &plan {
            if !seen.insert(pj.key) {
                return Err(format!("job key collision on {:016x}", pj.key));
            }
        }
        Ok(Sweep {
            request,
            engine,
            bench_names,
            plan,
        })
    }

    /// The resolved request.
    pub fn request(&self) -> &SweepRequest {
        &self.request
    }

    /// The deterministic job plan (merged-output order).
    pub fn plan(&self) -> &[PlannedJob] {
        &self.plan
    }

    /// Runs one planned job and encodes its outcome as a journal
    /// payload (deterministic: wall-clock and retry metadata excluded).
    pub fn run_job(&self, pj: &PlannedJob) -> String {
        let result =
            self.engine
                .run_job(&pj.job, &kind_options(pj.kind), DEFAULT_MAX_PROFILE_STEPS);
        encode_outcome(&result)
    }

    /// Renders one merged-output line from a planned job and its
    /// recorded payload.
    pub fn line(&self, pj: &PlannedJob, payload: &str) -> String {
        format!(
            "{:016x} {} {} w{} {} ref{} {} | {}",
            pj.key,
            pj.kind.name(),
            predictor_name(pj.job.predictor),
            pj.job.machine.width,
            self.bench_names
                .get(self.bench_index(pj.job.bench))
                .map(String::as_str)
                .unwrap_or("?"),
            pj.job.ref_input,
            match pj.job.variant {
                Variant::Baseline => "base",
                Variant::Transformed => "xform",
            },
            payload
        )
    }

    fn bench_index(&self, bench: usize) -> usize {
        // Benchmarks are registered in order, so engine ids are plan
        // indices; keep the mapping explicit in case that ever changes.
        bench
    }

    /// Runs every planned job serially in-process, in plan order — the
    /// bit-identity reference for any sharded run.
    pub fn run_serial(&self) -> String {
        let mut out = String::new();
        for pj in &self.plan {
            let payload = self.run_job(pj);
            out.push_str(&self.line(pj, &payload));
            out.push('\n');
        }
        out
    }

    /// Reconstructs the merged output from a journal snapshot, in plan
    /// order. Returns the keys still missing when the sweep is
    /// incomplete.
    ///
    /// # Errors
    ///
    /// The `Err` payload lists every planned key absent from the
    /// snapshot.
    pub fn merged(&self, snapshot: &JournalSnapshot) -> Result<String, Vec<u64>> {
        let by_key: HashMap<u64, &[u8]> = snapshot
            .records
            .iter()
            .map(|r| (r.key, r.payload.as_slice()))
            .collect();
        let missing: Vec<u64> = self
            .plan
            .iter()
            .filter(|pj| !by_key.contains_key(&pj.key))
            .map(|pj| pj.key)
            .collect();
        if !missing.is_empty() {
            return Err(missing);
        }
        let mut out = String::new();
        for pj in &self.plan {
            let payload = String::from_utf8_lossy(by_key[&pj.key]);
            out.push_str(&self.line(pj, &payload));
            out.push('\n');
        }
        Ok(out)
    }
}

/// The deterministic scalar projection of a [`SimStats`] (every counter
/// including the memory hierarchy; excludes nothing that distinguishes
/// two runs).
fn stats_words(s: &SimStats) -> [u64; 26] {
    [
        s.cycles,
        s.issued,
        s.issued_wrong_path,
        s.fetched,
        s.predicts,
        s.branches,
        s.branch_mispredicts,
        s.resolves,
        s.resolve_mispredicts,
        s.branch_stall_cycles,
        s.resolve_stall_cycles,
        s.frontend_stall_cycles,
        s.operand_stall_cycles,
        s.fu_stall_cycles,
        s.redirects,
        s.icache_miss_under_mispredict,
        s.icache_stall_cycles,
        s.mem.l1i.hits,
        s.mem.l1i.misses,
        s.mem.l1d.hits,
        s.mem.l1d.misses,
        s.mem.l2.hits,
        s.mem.l2.misses,
        s.mem.l3.hits,
        s.mem.l3.misses,
        s.mem.memory_accesses,
    ]
}

fn single_line(s: String) -> String {
    s.replace('\n', " ")
}

/// Encodes a job outcome as a deterministic journal payload. Wall-clock
/// fields and the retry flag are deliberately excluded: a resumed run
/// must merge byte-identically to an uninterrupted one.
pub fn encode_outcome(result: &JobResult) -> String {
    match result {
        JobResult::Completed(s) => {
            let words: Vec<String> = stats_words(&s.stats).iter().map(u64::to_string).collect();
            format!("ok {}", words.join(" "))
        }
        JobResult::Faulted {
            trap, pc, cycle, ..
        } => single_line(format!("fault pc={pc:#x} cycle={cycle} trap={trap:?}")),
        JobResult::TimedOut { cycles, .. } => format!("timeout cycles={cycles}"),
        JobResult::Failed { error, .. } => single_line(format!("failed {error}")),
    }
}

/// The worker executable for harness-driven sharded runs:
/// `VANGUARD_SWEEP_WORKER_EXE` when set (test binaries point it at the
/// real `vanguard-sweep` binary), the current executable otherwise
/// (binaries with a [`maybe_run_worker`] hook re-exec themselves).
///
/// # Errors
///
/// Returns the error from resolving the current executable path.
pub fn harness_worker_exe() -> io::Result<PathBuf> {
    match std::env::var_os(WORKER_EXE_ENV) {
        Some(path) => Ok(PathBuf::from(path)),
        None => std::env::current_exe(),
    }
}

/// Re-enters the process as a sweep worker when [`WORKER_ENV`] is set.
/// Call this at the very top of `main` in every binary that a sweep
/// parent may spawn (the `vanguard-sweep` and `faultinject` binaries).
/// Never call it from a libtest binary: a test harness re-exec'd as a
/// worker would run the whole test suite instead.
pub fn maybe_run_worker() {
    if std::env::var(WORKER_ENV).as_deref() != Ok("1") {
        return;
    }
    std::process::exit(worker_main());
}

/// Bumps a claim file's mtime (the lease heartbeat) from the holder's
/// heartbeat thread. The holder's own OS lock does not block its own
/// writes, and peers only read the mtime.
fn touch(path: &Path) {
    if let Ok(mut f) = OpenOptions::new().append(true).open(path) {
        let _ = f.write_all(b"hb");
    }
}

/// The worker loop: parse the request from the environment, then steal
/// unjournaled jobs via non-blocking leased claims until the journal
/// covers the whole plan. A heartbeat thread keeps the worker's
/// `hb-<pid>` liveness file and its currently-held claim fresh; claims
/// whose holder stopped heartbeating for a full lease are stolen, with
/// [`Journal::append_new`] guaranteeing at most one record per job.
fn worker_main() -> i32 {
    let fail = |msg: String| -> i32 {
        eprintln!("[sweep-worker] {msg}");
        1
    };
    let Ok(request_text) = std::env::var(REQUEST_ENV) else {
        return fail(format!("{REQUEST_ENV} not set"));
    };
    let Ok(journal_path) = std::env::var(JOURNAL_ENV) else {
        return fail(format!("{JOURNAL_ENV} not set"));
    };
    let request = match SweepRequest::parse(&request_text) {
        Ok(r) => r,
        Err(e) => return fail(format!("bad request: {e}")),
    };
    let journal = Journal::new(&journal_path);
    let mut policy = FaultPolicy::from_env();
    let cache_dir = policy
        .cache_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("{journal_path}.cache")));
    policy.cache_dir = Some(cache_dir.clone());
    let sweep = match Sweep::build(request, policy) {
        Ok(s) => s,
        Err(e) => return fail(format!("bad sweep: {e}")),
    };
    let claims = DiskCache::new(&cache_dir);
    let throttle = std::env::var(THROTTLE_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let lease = claim_lease_from_env();
    // Fault injection: once the journal holds this many records, stop
    // taking jobs and wait to be SIGKILLed (or for the parent's marker
    // saying the kill already fired). This is what makes kill-based
    // gates deterministic — the fleet cannot finish before the kill.
    let hold_limit = std::env::var(KILL_HOLD_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let marker = kill_marker(journal.path());

    // Heartbeat thread: refreshes this worker's liveness file and the
    // claim it currently holds, every quarter-lease. If this process is
    // SIGKILLed the heartbeats stop, the lease runs out, and a peer
    // steals the job — that is the self-healing path.
    let current_claim: Arc<Mutex<Option<PathBuf>>> = Arc::new(Mutex::new(None));
    let hb_path = cache_dir.join(format!("{HEARTBEAT_PREFIX}{}", std::process::id()));
    let stop = Arc::new(AtomicBool::new(false));
    {
        let current = Arc::clone(&current_claim);
        let hb = hb_path.clone();
        let stop = Arc::clone(&stop);
        let period = Duration::from_millis((lease.as_millis() as u64 / 4).max(25));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = fs::write(&hb, b"hb");
                if let Ok(slot) = current.lock() {
                    if let Some(path) = slot.as_deref() {
                        touch(path);
                    }
                }
                std::thread::sleep(period);
            }
        });
    }
    let finish = |code: i32| -> i32 {
        stop.store(true, Ordering::Relaxed);
        let _ = fs::remove_file(&hb_path);
        code
    };

    loop {
        let snapshot = match journal.read() {
            Ok(s) => s,
            Err(e) => return finish(fail(format!("journal read: {e}"))),
        };
        if let Some(limit) = hold_limit {
            if snapshot.records.len() >= limit && !marker.exists() {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        }
        let mut remaining = false;
        let mut ran = false;
        for pj in sweep.plan() {
            if snapshot.contains(pj.key) {
                continue;
            }
            remaining = true;
            let guard = match claims.try_claim_leased(JOB_CLAIM_TAG, pj.key, lease) {
                Ok(ClaimAttempt::Won(guard)) => Some(guard),
                // Lease expired: the holder stopped heartbeating (dead
                // or wedged). Steal the job — append_new dedups if the
                // holder somehow revives and finishes too.
                Ok(ClaimAttempt::Expired) => None,
                // A live worker owns it; steal the next one instead.
                Ok(ClaimAttempt::Held) => continue,
                Err(e) => return finish(fail(format!("claim: {e}"))),
            };
            // Re-check under the claim: a previous holder may have
            // journaled this job after our snapshot.
            match journal.read() {
                Ok(fresh) if fresh.contains(pj.key) => continue,
                Ok(_) => {}
                Err(e) => return finish(fail(format!("journal read: {e}"))),
            }
            if let (Some(g), Ok(mut slot)) = (&guard, current_claim.lock()) {
                *slot = Some(g.path().to_path_buf());
            }
            if throttle > 0 {
                std::thread::sleep(Duration::from_millis(throttle));
            }
            let payload = sweep.run_job(pj);
            let appended = journal.append_new(pj.key, payload.as_bytes());
            if let Ok(mut slot) = current_claim.lock() {
                *slot = None;
            }
            drop(guard);
            match appended {
                // false = the original holder raced us to the journal;
                // either way the job is recorded exactly once.
                Ok(_) => ran = true,
                Err(e) => return finish(fail(format!("journal append: {e}"))),
            }
        }
        if !remaining {
            return finish(0);
        }
        if !ran {
            // Everything left is claimed by other workers; let them run.
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// The outcome of a sharded parent run.
#[derive(Clone, Copy, Debug)]
pub struct ShardedRun {
    /// Planned jobs with a journal record when the run ended.
    pub completed: usize,
    /// Total planned jobs.
    pub total: usize,
    /// Whether the run was cut short by `kill_after` (the fault
    /// injector's `SIGKILL`).
    pub killed: bool,
}

impl ShardedRun {
    /// Whether every planned job is journaled.
    pub fn complete(&self) -> bool {
        self.completed == self.total
    }
}

/// Options for [`run_sharded`]. Construct with [`ShardOptions::new`]
/// and override the fault-injection and tuning fields as needed.
#[derive(Debug)]
pub struct ShardOptions {
    /// Worker executable to spawn ([`harness_worker_exe`] resolves it).
    pub worker_exe: PathBuf,
    /// Worker-process count (≥ 1).
    pub shards: usize,
    /// Shared artifact store + claim directory for the workers.
    pub cache_dir: PathBuf,
    /// `SIGKILL` workers once this many jobs are journaled (fault
    /// injection); `None` runs to completion.
    pub kill_after: Option<usize>,
    /// How many workers the `kill_after` SIGKILL hits. `None` kills the
    /// whole fleet and aborts the run (the classic kill-and-resume
    /// scenario); `Some(k)` kills `k` workers and lets the run
    /// self-heal — the survivors (or a respawned fleet) steal the dead
    /// workers' claims once their leases expire.
    pub kill_count: Option<usize>,
    /// Per-job worker throttle in milliseconds (fault injection needs
    /// the sweep to be observable mid-flight).
    pub throttle_ms: Option<u64>,
    /// Claim lease override passed to workers (`VANGUARD_CLAIM_LEASE_MS`);
    /// `None` inherits the environment.
    pub lease_ms: Option<u64>,
    /// Journal compaction threshold override passed to workers
    /// (`VANGUARD_JOURNAL_COMPACT_BYTES`); `None` inherits.
    pub compact_bytes: Option<u64>,
    /// Fleet respawns when every worker exits with the plan incomplete
    /// and the run was not deliberately aborted — the self-healing
    /// backstop for a fully-dead fleet.
    pub max_respawns: usize,
    /// Live status publisher (daemon mode); `None` skips publishing.
    pub status: Option<Arc<DaemonStatus>>,
}

impl ShardOptions {
    /// Options with the production defaults: no fault injection, no
    /// throttle, environment-inherited lease/compaction, and two fleet
    /// respawns.
    pub fn new(
        worker_exe: impl Into<PathBuf>,
        shards: usize,
        cache_dir: impl Into<PathBuf>,
    ) -> ShardOptions {
        ShardOptions {
            worker_exe: worker_exe.into(),
            shards,
            cache_dir: cache_dir.into(),
            kill_after: None,
            kill_count: None,
            throttle_ms: None,
            lease_ms: None,
            compact_bytes: None,
            max_respawns: 2,
            status: None,
        }
    }
}

/// Runs a sweep across worker processes sharing `journal`, streaming
/// one merged-output line per completed job (completion order) to
/// `stream`. Already-journaled jobs are never re-run — pointing this at
/// a partial journal *is* the resume path.
///
/// # Errors
///
/// Returns the I/O error from spawning workers or reading the journal;
/// worker job failures are journaled outcomes, not errors.
pub fn run_sharded(
    sweep: &Sweep,
    journal: &Journal,
    opts: &ShardOptions,
    stream: &mut dyn Write,
) -> io::Result<ShardedRun> {
    let total = sweep.plan().len();
    let by_key: HashMap<u64, &PlannedJob> = sweep.plan().iter().map(|pj| (pj.key, pj)).collect();
    let spawn_fleet = || -> io::Result<Vec<Child>> {
        (0..opts.shards.max(1))
            .map(|_| {
                let mut cmd = Command::new(&opts.worker_exe);
                cmd.env(WORKER_ENV, "1")
                    .env(REQUEST_ENV, sweep.request().render())
                    .env(JOURNAL_ENV, journal.path())
                    .env("VANGUARD_CACHE_DIR", &opts.cache_dir)
                    .stdin(Stdio::null())
                    .stdout(Stdio::null());
                match opts.throttle_ms {
                    Some(ms) => cmd.env(THROTTLE_ENV, ms.to_string()),
                    None => cmd.env_remove(THROTTLE_ENV),
                };
                if let Some(ms) = opts.lease_ms {
                    cmd.env(LEASE_ENV, ms.to_string());
                }
                if let Some(bytes) = opts.compact_bytes {
                    cmd.env(COMPACT_BYTES_ENV, bytes.to_string());
                }
                match opts.kill_after {
                    Some(limit) => cmd.env(KILL_HOLD_ENV, limit.to_string()),
                    None => cmd.env_remove(KILL_HOLD_ENV),
                };
                cmd.spawn()
            })
            .collect()
    };
    let completed_of = |snapshot: &JournalSnapshot| -> usize {
        sweep
            .plan()
            .iter()
            .filter(|pj| snapshot.contains(pj.key))
            .count()
    };
    let marker = kill_marker(journal.path());
    if opts.kill_after.is_some() {
        let _ = fs::remove_file(&marker); // stale marker from a prior run
    }
    let mut children = spawn_fleet()?;
    let mut streamed = 0usize;
    let mut killed = false;
    let mut kill_fired = false;
    let mut respawns_left = opts.max_respawns;
    loop {
        let snapshot = journal.read()?;
        for record in snapshot.records.iter().skip(streamed) {
            if let Some(pj) = by_key.get(&record.key) {
                let payload = String::from_utf8_lossy(&record.payload);
                writeln!(stream, "{}", sweep.line(pj, &payload))?;
            }
        }
        if snapshot.records.len() != streamed {
            streamed = snapshot.records.len();
            if let Some(status) = &opts.status {
                status.set_jobs(completed_of(&snapshot) as u64, total as u64);
                let _ = status.publish();
            }
        }
        if let Some(limit) = opts.kill_after {
            if !kill_fired && snapshot.records.len() >= limit {
                // SIGKILL, not a graceful shutdown: the point is to
                // prove the claims + journal survive the worst
                // interruption. kill_count=None aborts the whole run;
                // Some(k) wounds the fleet and expects it to self-heal.
                // The marker releases held survivors (KILL_HOLD_ENV)
                // so wound mode completes after the kill.
                let _ = fs::write(&marker, b"kill");
                let victims = opts
                    .kill_count
                    .unwrap_or(children.len())
                    .min(children.len());
                for child in children.iter_mut().take(victims) {
                    let _ = child.kill();
                }
                kill_fired = true;
                killed = opts.kill_count.is_none();
            }
        }
        let all_exited = children
            .iter_mut()
            .all(|c| matches!(c.try_wait(), Ok(Some(_))));
        if all_exited {
            if killed || completed_of(&snapshot) == total || respawns_left == 0 {
                break;
            }
            // The whole fleet died with work left and nobody asked for
            // an abort: respawn. The fresh workers steal the dead
            // claims once their leases expire.
            respawns_left -= 1;
            children = spawn_fleet()?;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for child in &mut children {
        let _ = child.wait();
    }
    let snapshot = journal.read()?;
    let completed = completed_of(&snapshot);
    if let Some(status) = &opts.status {
        status.set_jobs(completed as u64, total as u64);
        let _ = status.publish();
    }
    Ok(ShardedRun {
        completed,
        total,
        killed,
    })
}

/// Why a daemon request failed — the distinction drives retry policy.
#[derive(Debug)]
enum ServeError {
    /// The request itself is malformed: reported in `.err`, retired
    /// immediately, never retried.
    Bad(String),
    /// The sweep crashed or came back incomplete: retried on the next
    /// scan, quarantined after [`MAX_STRIKES_ENV`] strikes.
    Crashed(String),
}

/// Reads, increments, and persists the strike count for a request.
fn bump_strikes(spool: &Path, stem: &str) -> u32 {
    let path = spool.join(format!("{stem}.strikes"));
    let strikes = fs::read_to_string(&path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(0)
        + 1;
    let _ = fs::write(&path, strikes.to_string());
    strikes
}

/// Moves a poison request to `spool/quarantine/` with a replayable
/// reproducer, and clears its strike file.
fn quarantine_request(spool: &Path, req_path: &Path, stem: &str, detail: &str) {
    let qdir = spool.join("quarantine");
    let _ = fs::create_dir_all(&qdir);
    let dest = qdir.join(format!("{stem}.req"));
    if fs::rename(req_path, &dest).is_err() && fs::copy(req_path, &dest).is_ok() {
        let _ = fs::remove_file(req_path);
    }
    let text = fs::read_to_string(&dest).unwrap_or_default();
    let repro = format!(
        "# Quarantined sweep request `{stem}`\n\
         # Last failure: {detail}\n\
         # Replay with:\n\
         #   vanguard-sweep run --request {} --journal /tmp/{stem}-repro.vgj\n\
         \n{text}",
        dest.display()
    );
    let _ = fs::write(qdir.join(format!("{stem}.repro.txt")), repro);
    let _ = fs::remove_file(spool.join(format!("{stem}.strikes")));
}

/// Daemon mode: watch `spool` for dropped `<name>.req` request files,
/// run each (sharded), write `<name>.out` atomically, and rename the
/// request to `<name>.req.done`. A malformed request yields `<name>.err`
/// and is retired; a request whose sweep *crashes* is retried, and
/// quarantined to `spool/quarantine/` with a replayable reproducer
/// after `VANGUARD_SWEEP_MAX_STRIKES` strikes. On startup, claims whose
/// holder is gone (lease expired, lock dead) are swept to the cache
/// quarantine. The daemon continuously publishes
/// [`status.json`](crate::sweepstatus) into the spool. With `once`,
/// processes the requests present and returns instead of watching
/// forever.
///
/// # Errors
///
/// Returns the I/O error from scanning the spool or publishing the
/// initial status; per-request failures are reported in `.err` files
/// and strikes, not returned.
pub fn run_daemon(
    spool: &Path,
    worker_exe: &Path,
    shards: usize,
    once: bool,
    stream: &mut dyn Write,
) -> io::Result<()> {
    fs::create_dir_all(spool)?;
    let cache_dir = spool.join("cache");
    let lease = claim_lease_from_env();
    let swept = DiskCache::new(&cache_dir).sweep_stale_claims(lease)?;
    if swept > 0 {
        writeln!(stream, "[sweep-daemon] swept {swept} stale claims")?;
    }
    let max_strikes = std::env::var(MAX_STRIKES_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_STRIKES);
    let status = Arc::new(DaemonStatus::new(spool, &cache_dir));
    status.publish()?;
    loop {
        let mut requests: Vec<PathBuf> = fs::read_dir(spool)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "req"))
            .collect();
        requests.sort();
        for req_path in &requests {
            let stem = req_path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "request".into());
            writeln!(stream, "[sweep-daemon] request {}", req_path.display())?;
            status.set_state(&format!("serving {stem}"));
            status.set_journal(Some(spool.join(format!("{stem}.vgj"))));
            let _ = status.publish();
            let outcome =
                serve_request(req_path, spool, &stem, worker_exe, shards, &status, stream);
            status.set_state("idle");
            status.set_journal(None);
            status.set_jobs(0, 0);
            match outcome {
                Ok(()) => {
                    let _ = fs::rename(req_path, req_path.with_extension("req.done"));
                    let _ = fs::remove_file(spool.join(format!("{stem}.strikes")));
                    status.count_request_done();
                }
                Err(ServeError::Bad(detail)) => {
                    let _ = fs::write(spool.join(format!("{stem}.err")), &detail);
                    let _ = fs::rename(req_path, req_path.with_extension("req.done"));
                    status.count_request_failed();
                    writeln!(stream, "[sweep-daemon] request {stem} failed: {detail}")?;
                }
                Err(ServeError::Crashed(detail)) => {
                    let strikes = bump_strikes(spool, &stem);
                    writeln!(
                        stream,
                        "[sweep-daemon] request {stem} crashed \
                         (strike {strikes}/{max_strikes}): {detail}"
                    )?;
                    if strikes >= max_strikes {
                        quarantine_request(spool, req_path, &stem, &detail);
                        let _ = fs::write(spool.join(format!("{stem}.err")), &detail);
                        status.count_request_failed();
                        writeln!(stream, "[sweep-daemon] request {stem} quarantined")?;
                    }
                    // Below the limit: leave the .req for the next scan.
                }
            }
            let _ = status.publish();
        }
        if once {
            status.set_state("exited");
            let _ = status.publish();
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(200));
        let _ = status.publish();
    }
}

/// Serves one daemon request end-to-end.
fn serve_request(
    req_path: &Path,
    spool: &Path,
    stem: &str,
    worker_exe: &Path,
    shards: usize,
    status: &Arc<DaemonStatus>,
    stream: &mut dyn Write,
) -> Result<(), ServeError> {
    let bad = |msg: String| ServeError::Bad(msg);
    let crashed = |msg: String| ServeError::Crashed(msg);
    let text = fs::read_to_string(req_path).map_err(|e| bad(format!("read request: {e}")))?;
    let request = SweepRequest::parse(&text).map_err(|e| bad(format!("parse request: {e}")))?;
    let cache_dir = spool.join("cache");
    let policy = FaultPolicy {
        cache_dir: Some(cache_dir.clone()),
        ..FaultPolicy::from_env()
    };
    let sweep = Sweep::build(request, policy).map_err(|e| bad(format!("build sweep: {e}")))?;
    let journal = Journal::new(spool.join(format!("{stem}.vgj")));
    let mut opts = ShardOptions::new(worker_exe, shards, cache_dir);
    opts.status = Some(Arc::clone(status));
    // An operator throttle on the daemon reaches its workers (the CI
    // soak slows jobs down so kills land mid-run); run_sharded strips
    // the variable from workers unless the options carry it.
    opts.throttle_ms = std::env::var(THROTTLE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0);
    let run =
        run_sharded(&sweep, &journal, &opts, stream).map_err(|e| crashed(format!("run: {e}")))?;
    if !run.complete() {
        return Err(crashed(format!(
            "sweep incomplete: {} of {} jobs journaled",
            run.completed, run.total
        )));
    }
    let snapshot = journal
        .read()
        .map_err(|e| crashed(format!("journal: {e}")))?;
    let merged = sweep
        .merged(&snapshot)
        .map_err(|missing| crashed(format!("merge missing {} jobs", missing.len())))?;
    let out_path = spool.join(format!("{stem}.out"));
    let tmp = spool.join(format!(".tmp-{stem}.out"));
    fs::write(&tmp, merged).map_err(|e| crashed(format!("write output: {e}")))?;
    fs::rename(&tmp, &out_path).map_err(|e| crashed(format!("publish output: {e}")))?;
    writeln!(stream, "[sweep-daemon] wrote {}", out_path.display())
        .map_err(|e| crashed(format!("stream: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vanguard-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_request() -> SweepRequest {
        SweepRequest {
            count: 1,
            kinds: vec![TransformKind::Vanguard],
            ..SweepRequest::ci_quick()
        }
    }

    #[test]
    fn request_roundtrips_through_text() {
        let request = SweepRequest {
            suite: "spec2006-int".into(),
            count: 3,
            widths: vec![2, 4],
            predictors: vec![PredictorKind::Combined24KB, PredictorKind::Bimodal8K],
            kinds: vec![TransformKind::Vanguard, TransformKind::Stacked],
            scale: BenchScale::Quick,
        };
        assert_eq!(SweepRequest::parse(&request.render()), Ok(request));
    }

    #[test]
    fn request_defaults_and_errors() {
        let parsed = SweepRequest::parse("VGS1\n# comment\nsuite spec2006-int 2\n").unwrap();
        assert_eq!(parsed.widths, vec![4]);
        assert_eq!(parsed.predictors, vec![PredictorKind::Combined24KB]);
        assert_eq!(parsed.kinds, vec![TransformKind::Vanguard]);
        assert_eq!(parsed.scale, BenchScale::Quick);
        assert!(SweepRequest::parse("nope\n").is_err());
        assert!(SweepRequest::parse("VGS1\nwidths 4\n").is_err());
        assert!(SweepRequest::parse("VGS1\nsuite spec2006-int\nwidths 3\n").is_err());
        assert!(SweepRequest::parse("VGS1\nsuite a 1\nsuite a 1\n").is_err());
        // Suite names resolve at build time, not parse time.
        let mystery = SweepRequest::parse("VGS1\nsuite mystery-suite\n").unwrap();
        assert!(Sweep::build(mystery, FaultPolicy::default()).is_err());
    }

    #[test]
    fn plan_is_deterministic_with_unique_keys() {
        let a = Sweep::build(SweepRequest::ci_quick(), FaultPolicy::default()).unwrap();
        let b = Sweep::build(SweepRequest::ci_quick(), FaultPolicy::default()).unwrap();
        assert_eq!(a.plan().len(), 8); // 2 kinds x 2 benches x 2 variants
        let keys_a: Vec<u64> = a.plan().iter().map(|pj| pj.key).collect();
        let keys_b: Vec<u64> = b.plan().iter().map(|pj| pj.key).collect();
        assert_eq!(keys_a, keys_b, "job keys are process-independent");
        let mut sorted = keys_a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys_a.len(), "keys are unique");
    }

    #[test]
    fn merged_journal_matches_serial_run() {
        let dir = scratch("merge");
        let policy = FaultPolicy {
            cache_dir: Some(dir.join("cache")),
            ..FaultPolicy::default()
        };
        let sweep = Sweep::build(tiny_request(), policy).unwrap();
        let serial = sweep.run_serial();

        // Journal the jobs out of order, as racing workers would.
        let journal = Journal::new(dir.join("journal.vgj"));
        let mut order: Vec<&PlannedJob> = sweep.plan().iter().collect();
        order.reverse();
        for pj in order {
            journal
                .append(pj.key, sweep.run_job(pj).as_bytes())
                .unwrap();
        }
        let merged = sweep.merged(&journal.read().unwrap()).unwrap();
        assert_eq!(merged, serial, "merged output is order-independent");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_reports_missing_jobs() {
        let sweep = Sweep::build(tiny_request(), FaultPolicy::default()).unwrap();
        let missing = sweep.merged(&JournalSnapshot::default()).unwrap_err();
        assert_eq!(missing.len(), sweep.plan().len());
    }

    #[test]
    fn outcome_payloads_are_deterministic_text() {
        let sweep = Sweep::build(tiny_request(), FaultPolicy::default()).unwrap();
        let pj = &sweep.plan()[0];
        let a = sweep.run_job(pj);
        let b = sweep.run_job(pj);
        assert_eq!(a, b);
        assert!(a.starts_with("ok "), "{a}");
        assert_eq!(a.split(' ').count(), 27, "tag + 26 counters");
    }

    #[test]
    fn predictor_names_roundtrip() {
        for p in [
            PredictorKind::Bimodal8K,
            PredictorKind::Combined6KB,
            PredictorKind::Combined24KB,
            PredictorKind::TwoLevelLocal,
            PredictorKind::Tage32KB,
            PredictorKind::IslTage64KB,
        ] {
            assert_eq!(parse_predictor(predictor_name(p)), Some(p));
        }
        assert_eq!(parse_predictor("perceptron"), None);
    }
}

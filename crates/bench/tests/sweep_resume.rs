//! Integration tests for the `vanguard-sweep` binary: the CI
//! `sweep-resume` gate's contract, exercised through the real CLI.
//!
//! * a sharded run's merged output is byte-identical to `--serial`;
//! * `--fault-kill-after` interrupts the run (exit 3) leaving a
//!   partial journal, and `resume` completes it byte-identically;
//! * the committed request file `tests/sweeps/ci-quick.req` stays in
//!   sync with [`SweepRequest::ci_quick`].

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use vanguard_bench::sweep::SweepRequest;

const SWEEP_EXE: &str = env!("CARGO_BIN_EXE_vanguard-sweep");

/// The committed CI request file (repo root `tests/sweeps/`).
fn ci_request_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/sweeps/ci-quick.req")
}

/// A fresh scratch directory for one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vanguard-sweep-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `vanguard-sweep` with `args`, caching under `cache`, returning
/// (exit code, stdout).
fn run_sweep(args: &[&str], cache: &Path) -> (i32, Vec<u8>) {
    let output = Command::new(SWEEP_EXE)
        .args(args)
        .env("VANGUARD_CACHE_DIR", cache)
        .output()
        .expect("spawn vanguard-sweep");
    (output.status.code().unwrap_or(-1), output.stdout)
}

#[test]
fn committed_request_matches_ci_quick() {
    let text = fs::read_to_string(ci_request_path()).expect("committed request file");
    let parsed = SweepRequest::parse(&text).expect("committed request parses");
    assert_eq!(parsed, SweepRequest::ci_quick());
    // The canonical render round-trips (the file may add comments, but
    // its semantic content is exactly the CI quick request).
    assert_eq!(SweepRequest::parse(&parsed.render()).unwrap(), parsed);
}

#[test]
fn sharded_run_matches_serial_byte_for_byte() {
    let dir = scratch("sharded");
    let request = ci_request_path();
    let request = request.to_str().unwrap();

    let (code, serial) = run_sweep(
        &["run", "--request", request, "--serial"],
        &dir.join("serial-cache"),
    );
    assert_eq!(code, 0, "serial run succeeds");
    assert!(!serial.is_empty());

    let journal = dir.join("sharded.vgj");
    let (code, sharded) = run_sweep(
        &[
            "run",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &dir.join("sharded-cache"),
    );
    assert_eq!(code, 0, "sharded run succeeds");
    assert_eq!(sharded, serial, "sharded merge is byte-identical to serial");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = scratch("killresume");
    let request = ci_request_path();
    let request = request.to_str().unwrap();

    let (code, serial) = run_sweep(
        &["run", "--request", request, "--serial"],
        &dir.join("serial-cache"),
    );
    assert_eq!(code, 0);

    // Interrupt: SIGKILL the workers after 2 journaled jobs. The
    // throttle keeps jobs slow enough that the kill lands mid-sweep.
    let journal = dir.join("killed.vgj");
    let cache = dir.join("killed-cache");
    let (code, _) = run_sweep(
        &[
            "run",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
            "--fault-kill-after",
            "2",
            "--throttle-ms",
            "40",
        ],
        &cache,
    );
    assert_eq!(code, 3, "--fault-kill-after exits 3 (interrupted)");
    assert!(journal.exists(), "interrupted run leaves its journal");

    // Resuming a journal that does not exist is a usage error.
    let (code, _) = run_sweep(
        &[
            "resume",
            "--request",
            request,
            "--journal",
            dir.join("no-such.vgj").to_str().unwrap(),
        ],
        &cache,
    );
    assert_eq!(code, 2, "resume without a journal exits 2");

    // Resume off the partial journal: completes, byte-identical.
    let (code, resumed) = run_sweep(
        &[
            "resume",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &cache,
    );
    assert_eq!(code, 0, "resume completes");
    assert_eq!(
        resumed, serial,
        "resumed merge is byte-identical to an uninterrupted serial run"
    );
    let _ = fs::remove_dir_all(&dir);
}

//! Integration tests for the `vanguard-sweep` binary: the CI
//! `sweep-resume` gate's contract, exercised through the real CLI.
//!
//! * a sharded run's merged output is byte-identical to `--serial`;
//! * `--fault-kill-after` interrupts the run (exit 3) leaving a
//!   partial journal, and `resume` completes it byte-identically;
//! * the daemon serves spool requests end-to-end (`.out` byte-identical
//!   to serial), publishes `status.json`, and quarantines a poison
//!   request with a replayable reproducer after its strikes run out;
//! * the `status` subcommand reads the published file (exit 1 absent);
//! * the committed request file `tests/sweeps/ci-quick.req` stays in
//!   sync with [`SweepRequest::ci_quick`].

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use vanguard_bench::sweep::SweepRequest;
use vanguard_bench::sweepstatus::StatusSnapshot;

const SWEEP_EXE: &str = env!("CARGO_BIN_EXE_vanguard-sweep");

/// The committed CI request file (repo root `tests/sweeps/`).
fn ci_request_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/sweeps/ci-quick.req")
}

/// A fresh scratch directory for one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vanguard-sweep-resume-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `vanguard-sweep` with `args`, caching under `cache`, returning
/// (exit code, stdout). Forwards the child's stderr so a failing
/// assertion shows *why* the binary exited the way it did.
fn run_sweep(args: &[&str], cache: &Path) -> (i32, Vec<u8>) {
    let output = Command::new(SWEEP_EXE)
        .args(args)
        .env("VANGUARD_CACHE_DIR", cache)
        .output()
        .expect("spawn vanguard-sweep");
    eprint!("{}", String::from_utf8_lossy(&output.stderr));
    (output.status.code().unwrap_or(-1), output.stdout)
}

#[test]
fn committed_request_matches_ci_quick() {
    let text = fs::read_to_string(ci_request_path()).expect("committed request file");
    let parsed = SweepRequest::parse(&text).expect("committed request parses");
    assert_eq!(parsed, SweepRequest::ci_quick());
    // The canonical render round-trips (the file may add comments, but
    // its semantic content is exactly the CI quick request).
    assert_eq!(SweepRequest::parse(&parsed.render()).unwrap(), parsed);
}

#[test]
fn sharded_run_matches_serial_byte_for_byte() {
    let dir = scratch("sharded");
    let request = ci_request_path();
    let request = request.to_str().unwrap();

    let (code, serial) = run_sweep(
        &["run", "--request", request, "--serial"],
        &dir.join("serial-cache"),
    );
    assert_eq!(code, 0, "serial run succeeds");
    assert!(!serial.is_empty());

    let journal = dir.join("sharded.vgj");
    let (code, sharded) = run_sweep(
        &[
            "run",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &dir.join("sharded-cache"),
    );
    assert_eq!(code, 0, "sharded run succeeds");
    assert_eq!(sharded, serial, "sharded merge is byte-identical to serial");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = scratch("killresume");
    let request = ci_request_path();
    let request = request.to_str().unwrap();

    let (code, serial) = run_sweep(
        &["run", "--request", request, "--serial"],
        &dir.join("serial-cache"),
    );
    assert_eq!(code, 0);

    // Interrupt: SIGKILL the workers after 2 journaled jobs. The
    // throttle keeps jobs slow enough that the kill lands mid-sweep.
    let journal = dir.join("killed.vgj");
    let cache = dir.join("killed-cache");
    let (code, _) = run_sweep(
        &[
            "run",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
            "--fault-kill-after",
            "2",
            "--throttle-ms",
            "40",
        ],
        &cache,
    );
    assert_eq!(code, 3, "--fault-kill-after exits 3 (interrupted)");
    assert!(journal.exists(), "interrupted run leaves its journal");

    // Resuming a journal that does not exist is a usage error.
    let (code, _) = run_sweep(
        &[
            "resume",
            "--request",
            request,
            "--journal",
            dir.join("no-such.vgj").to_str().unwrap(),
        ],
        &cache,
    );
    assert_eq!(code, 2, "resume without a journal exits 2");

    // Resume off the partial journal: completes, byte-identical.
    let (code, resumed) = run_sweep(
        &[
            "resume",
            "--request",
            request,
            "--journal",
            journal.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &cache,
    );
    assert_eq!(code, 0, "resume completes");
    assert_eq!(
        resumed, serial,
        "resumed merge is byte-identical to an uninterrupted serial run"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn daemon_serves_spool_requests_and_publishes_status() {
    let dir = scratch("daemon");
    let request = ci_request_path();

    let (code, serial) = run_sweep(
        &["run", "--request", request.to_str().unwrap(), "--serial"],
        &dir.join("serial-cache"),
    );
    assert_eq!(code, 0, "serial reference succeeds");

    // `status` before any daemon ran: exit 1, no status file.
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    let status_args = ["status", "--spool", spool.to_str().unwrap()];
    let (code, _) = run_sweep(&status_args, &dir.join("unused-cache"));
    assert_eq!(code, 1, "status without a daemon exits 1");

    // Drop a request and serve it with a single --once pass.
    fs::copy(&request, spool.join("job.req")).unwrap();
    let output = Command::new(SWEEP_EXE)
        .args([
            "daemon",
            "--spool",
            spool.to_str().unwrap(),
            "--shards",
            "2",
            "--once",
        ])
        .output()
        .expect("spawn daemon");
    assert!(output.status.success(), "daemon --once exits cleanly");

    let out = fs::read(spool.join("job.out")).expect("daemon published job.out");
    assert_eq!(out, serial, "daemon output is byte-identical to serial");
    assert!(
        spool.join("job.req.done").is_file(),
        "served request renamed to .req.done"
    );
    assert!(
        !spool.join("job.err").exists(),
        "no error report for a good request"
    );

    // The published status parses and reflects the served request.
    let text = fs::read_to_string(spool.join("status.json")).expect("status.json published");
    let status = StatusSnapshot::parse(&text).expect("status.json parses");
    assert_eq!(status.state, "exited");
    assert_eq!(status.requests_done, 1);
    assert_eq!(status.requests_failed, 0);
    assert_eq!(status.quarantined, 0);

    // The status subcommand renders it and exits 0.
    let output = Command::new(SWEEP_EXE)
        .args(status_args)
        .output()
        .expect("spawn status");
    assert!(
        output.status.success(),
        "status exits 0 with a published file"
    );
    let rendered = String::from_utf8_lossy(&output.stdout);
    assert!(
        rendered.contains("state    : exited"),
        "rendered: {rendered}"
    );
    assert!(
        rendered.contains("requests : 1 done"),
        "rendered: {rendered}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn daemon_quarantines_a_poison_request() {
    let dir = scratch("poison");
    let spool = dir.join("spool");
    fs::create_dir_all(&spool).unwrap();
    fs::copy(ci_request_path(), spool.join("bad.req")).unwrap();
    // Poison: the request's journal path is occupied by a *directory*,
    // so every append and read of it crashes the serve.
    fs::create_dir_all(spool.join("bad.vgj")).unwrap();

    let output = Command::new(SWEEP_EXE)
        .args(["daemon", "--spool", spool.to_str().unwrap(), "--once"])
        .env("VANGUARD_SWEEP_MAX_STRIKES", "1")
        .output()
        .expect("spawn daemon");
    assert!(
        output.status.success(),
        "a poison request must not kill the daemon: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let qdir = spool.join("quarantine");
    assert!(
        qdir.join("bad.req").is_file(),
        "request moved to quarantine"
    );
    let repro = fs::read_to_string(qdir.join("bad.repro.txt")).expect("reproducer written");
    assert!(
        repro.contains("vanguard-sweep run --request"),
        "repro: {repro}"
    );
    assert!(
        !spool.join("bad.req").exists(),
        "poison request retired from the spool"
    );
    assert!(
        !spool.join("bad.strikes").exists(),
        "strike file cleaned up"
    );
    assert!(spool.join("bad.err").is_file(), "failure detail reported");

    let text = fs::read_to_string(spool.join("status.json")).expect("status.json published");
    let status = StatusSnapshot::parse(&text).expect("status.json parses");
    assert_eq!(status.requests_failed, 1);
    assert_eq!(status.quarantined, 1);
    let _ = fs::remove_dir_all(&dir);
}

//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation prints a small simulated-cycle table once (the design
//! evidence) and then Criterion-times the default configuration so
//! regressions in the end-to-end pipeline are caught.
//!
//! Ablations:
//! * selection threshold (the paper's 5% margin) sweep;
//! * hoist budget (max instructions hoisted per resolution block);
//! * hoisting loads as `ld.s` on/off (§2.2 mechanism 1);
//! * decomposition vs cmov-style if-conversion on predictable vs
//!   unpredictable hammocks (Figure 1's quadrants);
//! * DBB capacity (the paper sizes it at 16 empirically).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_core::{Experiment, ExperimentInput, SelectOptions, TransformOptions};
use vanguard_sim::MachineConfig;
use vanguard_workloads::{suite, BenchmarkSpec, OutcomeModel, SiteSpec};

fn input_for(name: &str) -> ExperimentInput {
    let spec = suite::all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("known benchmark");
    to_experiment_input(quick_spec(spec, BenchScale::Quick).build())
}

fn speedup_with(input: &ExperimentInput, opts: TransformOptions, dbb: usize) -> f64 {
    let mut machine = MachineConfig::four_wide();
    machine.dbb_entries = dbb;
    let mut e = Experiment::new(machine);
    e.transform = opts;
    e.run(input).expect("runs cleanly").geomean_speedup_pct()
}

fn threshold_sweep(c: &mut Criterion) {
    let input = input_for("h264ref");
    eprintln!("\n== ablation: selection threshold (predictability − bias margin) ==");
    for threshold in [-1.0, 0.0, 0.05, 0.15, 0.30] {
        let opts = TransformOptions {
            select: SelectOptions {
                threshold,
                ..SelectOptions::default()
            },
            ..TransformOptions::default()
        };
        eprintln!(
            "  threshold {threshold:>5.2}: speedup {:>6.2}%",
            speedup_with(&input, opts, 16)
        );
    }
    c.bench_function("ablation/threshold_default", |b| {
        b.iter(|| black_box(speedup_with(&input, TransformOptions::default(), 16)))
    });
}

fn hoist_ablation(c: &mut Criterion) {
    let input = input_for("h264ref");
    eprintln!("\n== ablation: hoist budget and ld.s hoisting ==");
    for max_hoist in [0, 2, 6, 12] {
        let opts = TransformOptions {
            max_hoist,
            ..TransformOptions::default()
        };
        eprintln!(
            "  max_hoist {max_hoist:>2}: speedup {:>6.2}%",
            speedup_with(&input, opts, 16)
        );
    }
    let no_loads = TransformOptions {
        hoist_loads: false,
        ..TransformOptions::default()
    };
    eprintln!(
        "  hoist_loads off: speedup {:>6.2}%  (the §2.2 non-faulting-load mechanism)",
        speedup_with(&input, no_loads, 16)
    );
    let temps = TransformOptions {
        shadow_temps: true,
        ..TransformOptions::default()
    };
    eprintln!(
        "  shadow_temps on: speedup {:>6.2}%  (§3 temporaries + commit moves in the resolve shadow)",
        speedup_with(&input, temps, 16)
    );
    c.bench_function("ablation/hoist_default", |b| {
        b.iter(|| black_box(speedup_with(&input, TransformOptions::default(), 16)))
    });
}

fn dbb_capacity(c: &mut Criterion) {
    let input = input_for("perlbench");
    eprintln!("\n== ablation: DBB capacity (paper: 16 entries suffice) ==");
    for entries in [2, 4, 16, 64] {
        eprintln!(
            "  dbb {entries:>2}: speedup {:>6.2}%",
            speedup_with(&input, TransformOptions::default(), entries)
        );
    }
    c.bench_function("ablation/dbb_16", |b| {
        b.iter(|| black_box(speedup_with(&input, TransformOptions::default(), 16)))
    });
}

/// Figure 1's quadrants: decomposition wins on predictable-unbiased
/// branches; predication (if-conversion) is for the unpredictable ones.
fn versus_if_conversion(c: &mut Criterion) {
    let mk = |name: &str, model: OutcomeModel| BenchmarkSpec {
        name: name.into(),
        suite: vanguard_workloads::Suite::Int2006,
        sites: vec![SiteSpec { model }],
        loads_per_block: 2,
        chase_loads: 0,
        hoistable_alu: 2,
        tail_alu: 1,
        fp_ops: 0,
        data_footprint: 16 * 1024,
        cond_depends_on_data: true,
        succ_depends_on_cond: false,
        iterations: 800,
        train_iterations: 500,
        ref_inputs: 1,
        bias_jitter: 0.0,
        use_calls: false,
        seed: 500,
    };
    eprintln!("\n== ablation: decomposition across Figure 1's quadrants ==");
    for (label, model) in [
        (
            "predictable-unbiased (ours)",
            OutcomeModel::markov(0.58, 0.95),
        ),
        (
            "unpredictable-unbiased (predication's)",
            OutcomeModel::Random { taken_prob: 0.5 },
        ),
        (
            "highly-biased (superblocks')",
            OutcomeModel::markov(0.96, 0.99),
        ),
    ] {
        let input = to_experiment_input(mk("quadrant", model).build());
        let opts = TransformOptions {
            select: SelectOptions {
                threshold: -1.0, // force conversion to expose the contrast
                ..SelectOptions::default()
            },
            ..TransformOptions::default()
        };
        eprintln!(
            "  {label:<40} speedup {:>6.2}%",
            speedup_with(&input, opts, 16)
        );
    }
    let input = to_experiment_input(mk("quadrant", OutcomeModel::markov(0.58, 0.95)).build());
    c.bench_function("ablation/quadrant_predictable_unbiased", |b| {
        b.iter(|| black_box(speedup_with(&input, TransformOptions::default(), 16)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = threshold_sweep, hoist_ablation, dbb_capacity, versus_if_conversion
}
criterion_main!(benches);

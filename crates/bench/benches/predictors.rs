//! Criterion micro-benchmarks: predictor lookup/update throughput and
//! Decomposed Branch Buffer operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vanguard_bpred::{
    Bimodal, Combined, DecomposedBranchBuffer, DirectionPredictor, Gshare, IslTage, PredMeta, Tage,
    TageConfig, TwoLevel,
};

/// A deterministic branch stream mixing patterns and bias.
fn stream(n: usize) -> Vec<(u64, bool)> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x1000 + ((i as u64) % 13) * 4;
            let taken = match i % 3 {
                0 => i % 5 != 0,
                1 => x % 10 < 7,
                _ => (i / 3) % 7 < 4,
            };
            (pc, taken)
        })
        .collect()
}

fn bench_predict_update<P: DirectionPredictor>(c: &mut Criterion, name: &str, mut p: P) {
    let s = stream(4096);
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut correct = 0u32;
            for &(pc, taken) in &s {
                let m = p.predict(black_box(pc));
                correct += (m.taken == taken) as u32;
                p.update(pc, &m, taken);
            }
            black_box(correct)
        })
    });
}

fn predictors(c: &mut Criterion) {
    bench_predict_update(c, "predict_update/bimodal", Bimodal::new(8192));
    bench_predict_update(c, "predict_update/gshare", Gshare::new(32 * 1024, 15));
    bench_predict_update(
        c,
        "predict_update/combined_24kb",
        Combined::ptlsim_default(),
    );
    bench_predict_update(
        c,
        "predict_update/two_level",
        TwoLevel::new(2048, 12, 32 * 1024),
    );
    bench_predict_update(
        c,
        "predict_update/tage_32kb",
        Tage::new(TageConfig::storage_32kb()),
    );
    bench_predict_update(c, "predict_update/isl_tage_64kb", IslTage::storage_64kb());
}

fn dbb(c: &mut Criterion) {
    c.bench_function("dbb/insert_tag_update", |b| {
        let mut dbb = DecomposedBranchBuffer::default();
        let meta = PredMeta::taken_only(true);
        b.iter(|| {
            // The per-decomposed-branch hardware sequence (Figure 7).
            let idx = dbb.insert(black_box(0x1000), meta);
            let tag = dbb.tail();
            let entry = dbb.get(tag).expect("present");
            black_box((idx, entry.meta.taken))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = predictors, dbb
}
criterion_main!(benches);

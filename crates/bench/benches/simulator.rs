//! Criterion benchmarks of the cycle simulator itself: simulated
//! instructions per second of wall-clock on a representative kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vanguard_bench::{quick_spec, BenchScale};
use vanguard_bpred::Combined;
use vanguard_isa::{Interpreter, TakenOracle};
use vanguard_sim::{MachineConfig, Simulator};
use vanguard_workloads::suite;

fn workload() -> vanguard_workloads::BuiltWorkload {
    let spec = suite::spec2006_int()
        .into_iter()
        .find(|s| s.name == "perlbench")
        .expect("perlbench");
    quick_spec(spec, BenchScale::Quick).build()
}

fn simulator(c: &mut Criterion) {
    let w = workload();
    // Establish the dynamic instruction count once.
    let committed = {
        let sim = Simulator::new(
            &w.program,
            w.refs[0].memory.clone(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        let mut sim = sim;
        for &(r, v) in &w.refs[0].init_regs {
            sim.set_reg(r, v);
        }
        sim.run().unwrap().stats.committed()
    };

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(committed));
    for machine in MachineConfig::all_widths() {
        group.bench_function(format!("in_order_{}wide", machine.width), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    &w.program,
                    w.refs[0].memory.clone(),
                    machine,
                    Box::new(Combined::ptlsim_default()),
                );
                for &(r, v) in &w.refs[0].init_regs {
                    sim.set_reg(r, v);
                }
                black_box(sim.run().unwrap().stats.cycles)
            })
        });
    }
    group.throughput(Throughput::Elements(committed));
    group.bench_function("functional_interpreter", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(&w.program, w.refs[0].memory.clone());
            for &(r, v) in &w.refs[0].init_regs {
                i.set_reg(r, v);
            }
            black_box(i.run(&mut TakenOracle::AlwaysTaken).unwrap().steps)
        })
    });
    group.finish();
}

criterion_group!(benches, simulator);
criterion_main!(benches);

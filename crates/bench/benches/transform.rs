//! Criterion benchmarks of the compiler passes: the Decomposed Branch
//! Transformation, profiling, scheduling, and layout.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vanguard_bench::{quick_spec, BenchScale};
use vanguard_bpred::Combined;
use vanguard_compiler::{layout_program, profile_program, schedule_program, SchedConfig};
use vanguard_core::{decompose_branches, TransformOptions};
use vanguard_workloads::suite;

fn transform(c: &mut Criterion) {
    let spec = suite::spec2006_int()
        .into_iter()
        .find(|s| s.name == "h264ref")
        .expect("h264ref");
    let w = quick_spec(spec, BenchScale::Quick).build();
    let profile = profile_program(
        &w.program,
        w.train.memory.clone(),
        &w.train.init_regs,
        Combined::ptlsim_default(),
        50_000_000,
    )
    .unwrap();

    let mut group = c.benchmark_group("compiler");
    group.sample_size(30);
    group.bench_function("decompose_branches", |b| {
        b.iter(|| {
            let mut p = w.program.clone();
            black_box(decompose_branches(
                &mut p,
                &profile,
                &TransformOptions::default(),
            ))
        })
    });
    group.bench_function("schedule_program", |b| {
        b.iter(|| {
            let mut p = w.program.clone();
            black_box(schedule_program(&mut p, &SchedConfig::for_width(4)))
        })
    });
    group.bench_function("layout_program", |b| {
        b.iter(|| {
            let mut p = w.program.clone();
            layout_program(&mut p, &profile);
            black_box(p.num_blocks())
        })
    });
    group.sample_size(10);
    group.bench_function("profile_program", |b| {
        b.iter(|| {
            black_box(
                profile_program(
                    &w.program,
                    w.train.memory.clone(),
                    &w.train.init_regs,
                    Combined::ptlsim_default(),
                    50_000_000,
                )
                .unwrap()
                .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, transform);
criterion_main!(benches);

//! End-to-end regeneration benches: one representative row of each paper
//! artefact, timed (the `figures` binary regenerates the full set).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vanguard_bench::{
    fig2_fig3_series, quick_spec, suite_speedups, table2_rows, to_experiment_input, BenchScale,
    SuiteEngine,
};
use vanguard_core::Experiment;
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn paper_tables(c: &mut Criterion) {
    let h264 = vec![suite::spec2006_int().remove(0)];

    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    // A fresh engine per iteration: these benches time the cold path
    // (profile + compile + simulate), not cache hits.
    group.bench_function("fig8_row_h264ref", |b| {
        b.iter(|| {
            let mut eng = SuiteEngine::new(BenchScale::Quick);
            black_box(suite_speedups(&mut eng, &h264))
        })
    });
    group.bench_function("table2_row_h264ref", |b| {
        b.iter(|| {
            let mut eng = SuiteEngine::new(BenchScale::Quick);
            black_box(table2_rows(&mut eng, &h264))
        })
    });
    group.bench_function("fig2_two_benchmarks", |b| {
        let specs: Vec<_> = suite::spec2006_int().into_iter().take(2).collect();
        b.iter(|| {
            let mut eng = SuiteEngine::new(BenchScale::Quick);
            black_box(fig2_fig3_series(&mut eng, &specs, 16))
        })
    });
    group.bench_function("experiment_4wide_h264ref", |b| {
        let input = to_experiment_input(quick_spec(h264[0].clone(), BenchScale::Quick).build());
        b.iter(|| {
            black_box(
                Experiment::new(MachineConfig::four_wide())
                    .run(&input)
                    .unwrap()
                    .geomean_speedup_pct(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, paper_tables);
criterion_main!(benches);

//! The full Table 1 memory hierarchy.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::outstanding::OutstandingQueue;

/// What kind of access is being made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (probes L1-I).
    InstFetch,
    /// Data load (probes L1-D; occupies the load-fill-request queue on a
    /// miss).
    Load,
    /// Data store (write-allocate into L1-D; completion never blocks the
    /// pipeline — the store buffer owns it).
    Store,
}

/// The level that serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// First-level cache (I or D).
    L1,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Memory,
}

/// Result of a timed access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the data is available to consumers.
    pub complete: u64,
    /// The level that had the line.
    pub level: Level,
}

/// Hierarchy configuration (defaults to Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L3 / LLC.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u32,
    /// Miss-buffer entries.
    pub miss_buffer: usize,
    /// Load-fill-request-queue entries.
    pub lfrq: usize,
}

impl MemConfig {
    /// The paper's Table 1 configuration.
    pub fn table1_default() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 4,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 12,
            },
            l3: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                ways: 32,
                line_bytes: 64,
                latency: 25,
            },
            memory_latency: 140,
            miss_buffer: 64,
            lfrq: 64,
        }
    }

    /// The §6.1 ablation: the I$ capacity reduced by 25% to 24 KB
    /// (associativity drops to 3 ways to keep the set count).
    pub fn reduced_icache() -> Self {
        let mut c = Self::table1_default();
        c.l1i.size_bytes = 24 * 1024;
        c.l1i.ways = 3;
        c
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1-I stats.
    pub l1i: CacheStats,
    /// L1-D stats.
    pub l1d: CacheStats,
    /// L2 stats.
    pub l2: CacheStats,
    /// L3 stats.
    pub l3: CacheStats,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
}

/// The timed memory system: L1-I + L1-D over a unified L2, an L3, and main
/// memory, with bounded miss tracking.
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    miss_buffer: OutstandingQueue,
    lfrq: OutstandingQueue,
    memory_accesses: u64,
}

impl MemSystem {
    /// Builds the hierarchy from a configuration.
    pub fn new(config: MemConfig) -> Self {
        MemSystem {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            miss_buffer: OutstandingQueue::new(config.miss_buffer),
            lfrq: OutstandingQueue::new(config.lfrq),
            memory_accesses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Performs a timed access at `cycle`; returns completion time and the
    /// servicing level.
    pub fn access(&mut self, cycle: u64, addr: u64, kind: AccessKind) -> Access {
        let l1 = match kind {
            AccessKind::InstFetch => &mut self.l1i,
            AccessKind::Load | AccessKind::Store => &mut self.l1d,
        };
        let l1_latency = u64::from(l1.config().latency);
        if l1.access(addr) {
            return Access {
                complete: cycle + l1_latency,
                level: Level::L1,
            };
        }
        // L1 miss: walk the outer levels, filling on the way back.
        let (level, latency) = if self.l2.access(addr) {
            (Level::L2, u64::from(self.config.l2.latency))
        } else if self.l3.access(addr) {
            (Level::L3, u64::from(self.config.l3.latency))
        } else {
            self.memory_accesses += 1;
            (Level::Memory, u64::from(self.config.memory_latency))
        };
        let line = addr & !(self.config.l1d.line_bytes as u64 - 1);
        let complete = self.miss_buffer.request(cycle, line, latency);
        let complete = if kind == AccessKind::Load {
            // Loads also occupy the load-fill-request queue.
            self.lfrq.request(cycle, line, complete - cycle)
        } else {
            complete
        };
        Access { complete, level }
    }

    /// Probes whether an address currently hits in its L1 (no state
    /// change).
    pub fn probe_l1(&self, addr: u64, kind: AccessKind) -> bool {
        match kind {
            AccessKind::InstFetch => self.l1i.probe(addr),
            AccessKind::Load | AccessKind::Store => self.l1d.probe(addr),
        }
    }

    /// Snapshot of statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Resets statistics (contents persist — used for warmup windows).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.memory_accesses = 0;
    }

    /// Current in-flight misses (for occupancy statistics).
    pub fn inflight(&mut self, cycle: u64) -> usize {
        self.miss_buffer.occupancy(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_walks_to_memory() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        let a = m.access(0, 0x4_0000, AccessKind::Load);
        assert_eq!(a.level, Level::Memory);
        assert_eq!(a.complete, 140);
        assert_eq!(m.stats().memory_accesses, 1);
    }

    #[test]
    fn fill_path_makes_later_accesses_hits() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        m.access(0, 0x4_0000, AccessKind::Load);
        let a = m.access(200, 0x4_0000, AccessKind::Load);
        assert_eq!(a.level, Level::L1);
        assert_eq!(a.complete, 204);
    }

    #[test]
    fn inst_and_data_use_separate_l1s() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        m.access(0, 0x4_0000, AccessKind::Load);
        // Same address as an instruction fetch still misses L1-I but hits L2.
        let a = m.access(200, 0x4_0000, AccessKind::InstFetch);
        assert_eq!(a.level, Level::L2);
        assert_eq!(m.stats().l1i.misses, 1);
    }

    #[test]
    fn l2_eviction_falls_back_to_l3() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        // Touch > 256 KB of distinct lines to overflow L2, then re-touch the
        // first line: L1/L2 evicted it, L3 (4 MB) still has it.
        for i in 0..(512 * 1024 / 64) as u64 {
            m.access(i, 0x10_0000 + i * 64, AccessKind::Load);
        }
        let a = m.access(1_000_000, 0x10_0000, AccessKind::Load);
        assert_eq!(a.level, Level::L3);
    }

    #[test]
    fn overlapping_misses_expose_mlp() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        let a = m.access(0, 0x100_0000, AccessKind::Load);
        let b = m.access(1, 0x200_0000, AccessKind::Load);
        // Both complete ~140 cycles after issue — parallel, not serial.
        assert_eq!(a.complete, 140);
        assert_eq!(b.complete, 141);
    }

    #[test]
    fn reduced_icache_config_shrinks_capacity() {
        let c = MemConfig::reduced_icache();
        assert_eq!(c.l1i.size_bytes, 24 * 1024);
        assert_eq!(c.l1i.num_sets(), MemConfig::table1_default().l1i.num_sets());
    }

    #[test]
    fn stores_do_not_consume_lfrq() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        let a = m.access(0, 0x300_0000, AccessKind::Store);
        assert_eq!(a.level, Level::Memory);
        // A subsequent load to a different line shows no LFRQ interference.
        let b = m.access(1, 0x400_0000, AccessKind::Load);
        assert_eq!(b.complete, 141);
    }

    #[test]
    fn probe_l1_is_side_effect_free() {
        let mut m = MemSystem::new(MemConfig::table1_default());
        assert!(!m.probe_l1(0x9000, AccessKind::Load));
        m.access(0, 0x9000, AccessKind::Load);
        assert!(m.probe_l1(0x9000, AccessKind::Load));
        assert_eq!(m.stats().l1d.hits, 0);
    }
}

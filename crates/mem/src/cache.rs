//! A single set-associative cache with true-LRU replacement.

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latency for a hit at this level, in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets).
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets.is_power_of_two() && sets > 0, "invalid cache geometry");
        sets
    }
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.misses as f64 / total as f64
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    last_use: u64,
}

/// A set-associative, true-LRU, write-allocate cache (timing only — data
/// values live in the architectural memory image).
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    use_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache from a configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::num_sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            set_mask: (sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses `addr`; returns `true` on hit. A miss allocates the line,
    /// evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: u64) -> bool {
        self.use_clock += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.use_clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() < self.config.ways {
            set.push(Line {
                tag,
                last_use: self.use_clock,
            });
        } else {
            let lru = set
                .iter_mut()
                .min_by_key(|l| l.last_use)
                .expect("non-empty set");
            *lru = Line {
                tag,
                last_use: self.use_clock,
            };
        }
        false
    }

    /// Probes without updating LRU or stats; returns `true` if resident.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Invalidates all contents (keeps statistics).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            latency: 4,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 8);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f)); // same 64-byte line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line = 512).
        c.access(0x0000);
        c.access(0x0200);
        c.access(0x0000); // refresh line 0
        c.access(0x0400); // evicts 0x0200 (LRU)
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0200));
        assert!(c.probe(0x0400));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x0000);
        let stats = c.stats();
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn flush_invalidates_contents() {
        let mut c = small();
        c.access(0x1000);
        c.flush();
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn miss_rate_math() {
        let s = CacheStats {
            hits: 75,
            misses: 25,
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 1 KB
                             // 4 KB working set, repeatedly streamed: everything misses after
                             // the first pass too (LRU streaming pathology).
        for _ in 0..3 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn working_set_within_cache_stays_resident() {
        let mut c = small();
        for _ in 0..10 {
            for i in 0..16u64 {
                c.access(i * 64); // exactly 1 KB
            }
        }
        // Only the 16 cold misses.
        assert_eq!(c.stats().misses, 16);
    }
}

//! Bounded tracking of in-flight misses (miss buffer / LFRQ).

use std::collections::VecDeque;

/// A bounded queue of outstanding line misses.
///
/// Models both Table 1 structures: the 64-entry miss buffer and the
/// 64-entry load-fill-request queue. Misses to a line that is already in
/// flight *merge* (complete at the same time). When the queue is full, a
/// new miss must wait for the earliest completion before it can even be
/// issued — the structural hazard an in-order machine feels as back-end
/// pressure.
#[derive(Clone, Debug)]
pub struct OutstandingQueue {
    capacity: usize,
    /// `(line_addr, complete_cycle)` in completion order.
    inflight: VecDeque<(u64, u64)>,
    merges: u64,
    structural_stalls: u64,
}

impl OutstandingQueue {
    /// Creates a queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        OutstandingQueue {
            capacity,
            inflight: VecDeque::new(),
            merges: 0,
            structural_stalls: 0,
        }
    }

    /// Removes entries that have completed by `cycle`.
    pub fn drain_completed(&mut self, cycle: u64) {
        while let Some(&(_, done)) = self.inflight.front() {
            if done <= cycle {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Registers a miss to `line_addr` observed at `cycle` that needs
    /// `latency` cycles of service; returns the completion cycle,
    /// accounting for merging and structural stalls.
    pub fn request(&mut self, cycle: u64, line_addr: u64, latency: u64) -> u64 {
        self.drain_completed(cycle);
        if let Some(&(_, done)) = self.inflight.iter().find(|&&(l, _)| l == line_addr) {
            self.merges += 1;
            return done;
        }
        let start = if self.inflight.len() >= self.capacity {
            // Wait for the earliest in-flight miss to free its slot.
            self.structural_stalls += 1;
            let earliest = self.inflight.front().expect("full queue").1;
            self.inflight.pop_front();
            earliest.max(cycle)
        } else {
            cycle
        };
        let done = start + latency;
        // Keep the deque sorted by completion (latencies are uniform per
        // level, and delayed starts only ever append later completions).
        let pos = self
            .inflight
            .iter()
            .position(|&(_, d)| d > done)
            .unwrap_or(self.inflight.len());
        self.inflight.insert(pos, (line_addr, done));
        done
    }

    /// Entries currently in flight (after draining at the given cycle).
    pub fn occupancy(&mut self, cycle: u64) -> usize {
        self.drain_completed(cycle);
        self.inflight.len()
    }

    /// Lifetime count of merged (secondary) misses.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Lifetime count of full-queue stalls.
    pub fn structural_stalls(&self) -> u64 {
        self.structural_stalls
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_overlap() {
        let mut q = OutstandingQueue::new(4);
        let a = q.request(0, 0x100, 140);
        let b = q.request(1, 0x200, 140);
        assert_eq!(a, 140);
        assert_eq!(b, 141); // overlapped, not serialized
    }

    #[test]
    fn same_line_merges() {
        let mut q = OutstandingQueue::new(4);
        let a = q.request(0, 0x100, 140);
        let b = q.request(10, 0x100, 140);
        assert_eq!(a, b);
        assert_eq!(q.merges(), 1);
    }

    #[test]
    fn full_queue_delays_new_misses() {
        let mut q = OutstandingQueue::new(2);
        q.request(0, 0x100, 100);
        q.request(0, 0x200, 100);
        let c = q.request(1, 0x300, 100);
        // Must wait for the first completion at 100 before starting.
        assert_eq!(c, 200);
        assert_eq!(q.structural_stalls(), 1);
    }

    #[test]
    fn completed_entries_free_slots() {
        let mut q = OutstandingQueue::new(1);
        q.request(0, 0x100, 10);
        // At cycle 20 the miss has retired; no structural stall.
        let c = q.request(20, 0x200, 10);
        assert_eq!(c, 30);
        assert_eq!(q.structural_stalls(), 0);
    }

    #[test]
    fn occupancy_reflects_inflight_misses() {
        let mut q = OutstandingQueue::new(8);
        q.request(0, 0x100, 50);
        q.request(0, 0x200, 50);
        assert_eq!(q.occupancy(0), 2);
        assert_eq!(q.occupancy(100), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = OutstandingQueue::new(0);
    }
}

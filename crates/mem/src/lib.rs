//! # vanguard-mem
//!
//! Timing model of the memory hierarchy from Table 1 of the paper:
//!
//! | Structure | Configuration |
//! |---|---|
//! | L1-D | 8-way, 32 KB, 64 B lines, 4-cycle |
//! | L1-I | 4-way, 32 KB, 64 B lines, 4-cycle |
//! | L2 | 16-way, 256 KB unified, 12-cycle |
//! | L3 | 32-way, 4 MB LLC, 25-cycle |
//! | Miss handling | 64-entry miss buffer, 64-entry load-fill-request queue |
//! | Main memory | 140-cycle |
//!
//! The model is *non-blocking*: an access returns the cycle at which its
//! data is available, and outstanding misses to the same line merge. The
//! simulator decides what stalls on that completion time (in-order cores
//! stall the consumer, not the load).
//!
//! ```
//! use vanguard_mem::{MemSystem, MemConfig, AccessKind};
//!
//! let mut mem = MemSystem::new(MemConfig::table1_default());
//! let miss = mem.access(0, 0x4_0000, AccessKind::Load);
//! let hit = mem.access(miss.complete, 0x4_0000, AccessKind::Load);
//! assert!(hit.complete - miss.complete < miss.complete - 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod hierarchy;
mod outstanding;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{Access, AccessKind, Level, MemConfig, MemStats, MemSystem};
pub use outstanding::OutstandingQueue;

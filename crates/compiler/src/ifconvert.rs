//! Cmov-style if-conversion (predication baseline).

use std::collections::HashMap;
use vanguard_ir::{Cfg, RegSet};
use vanguard_isa::{AluOp, BlockId, CmpKind, CondKind, Inst, Operand, Program, Reg};

/// Outcome of [`if_convert`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IfConvertStats {
    /// Hammocks converted to straight-line select code.
    pub converted: usize,
    /// Instructions added (mask computation + blends − removed branch).
    pub added_insts: isize,
}

/// If-converts small, side-effect-free hammocks into straight-line
/// mask-and-blend code — the paper's Figure 1 bottom-right quadrant
/// (predication: the right tool for *unpredictable* unbiased branches,
/// the wrong tool for predictable ones, which is exactly the contrast the
/// decomposed-branch benches measure).
///
/// Pattern: `A: br c, T` / fall-through `F`, where `T` and `F` are pure
/// ALU blocks (or the join itself) converging on a common join `J`.
/// Rewrite: compute an all-ones/all-zeroes mask from `c`, execute both
/// sides into temporaries, and blend `r = (t & mask) | (f & !mask)`.
///
/// Only hammocks whose sides have at most `max_side_insts` instructions
/// are converted (the classic profitability guard).
pub fn if_convert(program: &mut Program, max_side_insts: usize) -> IfConvertStats {
    let mut stats = IfConvertStats::default();
    let mut skipped: Vec<BlockId> = Vec::new();
    while let Some(site) = find_candidate(program, max_side_insts, &skipped) {
        let block = site.block;
        match convert_site(program, site) {
            Some(added) => {
                stats.converted += 1;
                stats.added_insts += added;
            }
            // Not enough free registers to rename this hammock: leave
            // the branch in place and never reconsider it, so the scan
            // always terminates.
            None => skipped.push(block),
        }
    }
    debug_assert!(program.validate().is_ok());
    stats
}

struct Candidate {
    block: BlockId,
    taken_side: Option<BlockId>,
    fall_side: Option<BlockId>,
    join: BlockId,
}

/// A side block qualifies when it is pure ALU/Cmp work ending in a jump or
/// fall-through.
fn side_ok(program: &Program, b: BlockId, max: usize) -> Option<BlockId> {
    let block = program.block(b);
    let insts = block.insts();
    let body_len = match block.terminator() {
        Some(Inst::Jump { .. }) => insts.len() - 1,
        Some(t) if t.is_control() => return None,
        _ => insts.len(),
    };
    if body_len > max {
        return None;
    }
    for inst in &insts[..body_len] {
        if !matches!(inst, Inst::Alu { .. } | Inst::Cmp { .. } | Inst::Nop) {
            return None;
        }
    }
    match block.terminator() {
        Some(Inst::Jump { target }) => Some(*target),
        _ => block.fallthrough(),
    }
}

fn find_candidate(program: &Program, max: usize, skipped: &[BlockId]) -> Option<Candidate> {
    let cfg = Cfg::build(program);
    for (bid, block) in program.iter() {
        if !cfg.is_reachable(bid) || skipped.contains(&bid) {
            continue;
        }
        let Some(Inst::Branch { target, .. }) = block.terminator() else {
            continue;
        };
        let t = *target;
        let f = block.fallthrough()?;
        if t == f {
            continue;
        }
        // Two-sided: T→J, F→J. One-sided: T→F (join = F) or F is join of T.
        let t_exit = side_ok(program, t, max);
        let f_exit = side_ok(program, f, max);
        // Sides must be exclusively entered from this branch.
        let single_pred = |x: BlockId| cfg.preds(x) == [bid];
        if let (Some(tj), Some(fj)) = (t_exit, f_exit) {
            if tj == fj && single_pred(t) && single_pred(f) && tj != bid && tj != t && tj != f {
                return Some(Candidate {
                    block: bid,
                    taken_side: Some(t),
                    fall_side: Some(f),
                    join: tj,
                });
            }
        }
        // One-sided hammock: taken side flows into the fall-through block.
        if let Some(tj) = t_exit {
            if tj == f && single_pred(t) {
                return Some(Candidate {
                    block: bid,
                    taken_side: Some(t),
                    fall_side: None,
                    join: f,
                });
            }
        }
    }
    None
}

/// Registers referenced anywhere in the program (complement = safe temps).
fn used_regs(program: &Program) -> RegSet {
    let mut used = RegSet::new();
    for (_, b) in program.iter() {
        for inst in b.insts() {
            if let Some(d) = inst.dst() {
                used.insert(d);
            }
            used.extend(inst.srcs());
        }
    }
    used
}

/// Renames a side's writes into fresh temporaries; returns the instruction
/// sequence and the `original → temp` map.
fn rename_side(
    program: &Program,
    side: Option<BlockId>,
    temps: &mut impl Iterator<Item = Reg>,
) -> (Vec<Inst>, HashMap<Reg, Reg>) {
    let mut out = Vec::new();
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let Some(side) = side else {
        return (out, map);
    };
    let block = program.block(side);
    let body_len = match block.terminator() {
        Some(Inst::Jump { .. }) => block.insts().len() - 1,
        _ => block.insts().len(),
    };
    for inst in &block.insts()[..body_len] {
        let mut inst = *inst;
        // Rename reads of previously renamed registers.
        let remap = |r: Reg, map: &HashMap<Reg, Reg>| *map.get(&r).unwrap_or(&r);
        match &mut inst {
            Inst::Alu { a, b, .. } => {
                if let Operand::Reg(r) = a {
                    *r = remap(*r, &map);
                }
                if let Operand::Reg(r) = b {
                    *r = remap(*r, &map);
                }
            }
            Inst::Cmp { a, b, .. } => {
                *a = remap(*a, &map);
                if let Operand::Reg(r) = b {
                    *r = remap(*r, &map);
                }
            }
            Inst::Nop => {}
            other => unreachable!("side_ok admitted {other:?}"),
        }
        // Rename the write to a temp. The iterator cannot run dry here:
        // convert_site counted the distinct side writes plus scratch
        // registers against the free set before mutating anything.
        if let Some(d) = inst.dst() {
            let t = *map
                .entry(d)
                .or_insert_with(|| temps.next().expect("temp budget pre-checked"));
            match &mut inst {
                Inst::Alu { dst, .. } | Inst::Cmp { dst, .. } => *dst = t,
                _ => {}
            }
        }
        out.push(inst);
    }
    (out, map)
}

/// Distinct registers a side block writes (the temp demand of renaming).
fn side_writes(program: &Program, side: Option<BlockId>, writes: &mut RegSet) {
    let Some(side) = side else { return };
    let block = program.block(side);
    let body_len = match block.terminator() {
        Some(Inst::Jump { .. }) => block.insts().len() - 1,
        _ => block.insts().len(),
    };
    for inst in &block.insts()[..body_len] {
        if let Some(d) = inst.dst() {
            writes.insert(d);
        }
    }
}

/// Converts one hammock, or returns `None` (program untouched) when the
/// free-register budget cannot cover the renaming temps — a register-
/// hungry guest program must degrade to "not converted", never panic.
fn convert_site(program: &mut Program, c: Candidate) -> Option<isize> {
    let used = used_regs(program);
    let free = RegSet::all().difference(&used);

    // Temp demand: one per distinct side write, plus mask, notmask, and
    // two blend scratches. Checked before any mutation.
    let mut writes = RegSet::new();
    side_writes(program, c.taken_side, &mut writes);
    side_writes(program, c.fall_side, &mut writes);
    if free.len() < writes.len() + 4 {
        return None;
    }
    let mut temps = free.iter().collect::<Vec<_>>().into_iter();

    let (cond, src) = match program.block(c.block).terminator() {
        Some(Inst::Branch { cond, src, .. }) => (*cond, *src),
        _ => unreachable!("candidate has a branch terminator"),
    };

    let (t_code, t_map) = rename_side(program, c.taken_side, &mut temps);
    let (f_code, f_map) = rename_side(program, c.fall_side, &mut temps);

    let mask = temps.next().expect("temp budget pre-checked");
    let notmask = temps.next().expect("temp budget pre-checked");
    let scratch_a = temps.next().expect("temp budget pre-checked");
    let scratch_b = temps.next().expect("temp budget pre-checked");

    let before = program.num_insts();

    let block = program.block_mut(c.block);
    let insts = block.insts_mut();
    insts.pop(); // the branch

    // mask = all-ones iff the branch would have been taken.
    let flag_kind = match cond {
        CondKind::Nz => CmpKind::Ne,
        CondKind::Z => CmpKind::Eq,
    };
    insts.push(Inst::Cmp {
        kind: flag_kind,
        dst: mask,
        a: src,
        b: Operand::Imm(0),
    });
    insts.push(Inst::alu(
        AluOp::Sub,
        mask,
        Operand::Imm(0),
        Operand::Reg(mask),
    ));
    insts.push(Inst::alu(
        AluOp::Xor,
        notmask,
        Operand::Reg(mask),
        Operand::Imm(-1),
    ));
    insts.extend(t_code);
    insts.extend(f_code);

    // Blend every register either side writes.
    let mut written: Vec<Reg> = t_map.keys().chain(f_map.keys()).copied().collect();
    written.sort_unstable();
    written.dedup();
    for r in written {
        let val_taken = t_map.get(&r).copied().unwrap_or(r);
        let val_fall = f_map.get(&r).copied().unwrap_or(r);
        insts.push(Inst::alu(
            AluOp::And,
            scratch_a,
            Operand::Reg(val_taken),
            Operand::Reg(mask),
        ));
        insts.push(Inst::alu(
            AluOp::And,
            scratch_b,
            Operand::Reg(val_fall),
            Operand::Reg(notmask),
        ));
        insts.push(Inst::alu(
            AluOp::Or,
            r,
            Operand::Reg(scratch_a),
            Operand::Reg(scratch_b),
        ));
    }
    block.set_fallthrough(Some(c.join));

    Some(program.num_insts() as isize - before as isize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{Interpreter, Memory, ProgramBuilder, TakenOracle};

    /// if (r1 != 0) { r2 = r3 + 7 } else { r2 = r3 - 7; r4 = 1 }; join.
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.block("a");
        let t = b.block("t");
        let f = b.block("f");
        let j = b.block("join");
        b.push(
            a,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(a, f);
        b.push(
            t,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(3)), Operand::Imm(7)),
        );
        b.push(t, Inst::Jump { target: j });
        b.push(
            f,
            Inst::alu(AluOp::Sub, Reg(2), Operand::Reg(Reg(3)), Operand::Imm(7)),
        );
        b.push(f, Inst::mov(Reg(4), Operand::Imm(1)));
        b.fallthrough(f, j);
        b.push(j, Inst::store(Reg(2), Reg(5), 0));
        b.push(j, Inst::Halt);
        b.set_entry(a);
        b.finish().unwrap()
    }

    fn final_state(p: &Program, r1: u64) -> (u64, u64, Option<u64>) {
        let mut mem = Memory::new();
        mem.map_region(0x7000, 64);
        let mut i = Interpreter::new(p, mem);
        i.set_reg(Reg(1), r1);
        i.set_reg(Reg(3), 100);
        i.set_reg(Reg(5), 0x7000);
        i.run(&mut TakenOracle::random(3)).unwrap();
        (i.reg(Reg(2)), i.reg(Reg(4)), i.memory().read(0x7000))
    }

    #[test]
    fn two_sided_diamond_is_converted() {
        let mut p = diamond();
        let stats = if_convert(&mut p, 4);
        assert_eq!(stats.converted, 1);
        // No conditional branch remains.
        let branches = p
            .iter()
            .flat_map(|(_, b)| b.insts())
            .filter(|i| matches!(i, Inst::Branch { .. }))
            .count();
        assert_eq!(branches, 0);
    }

    #[test]
    fn conversion_preserves_semantics_both_ways() {
        let p0 = diamond();
        let mut p1 = p0.clone();
        if_convert(&mut p1, 4);
        for r1 in [0u64, 1, 42] {
            assert_eq!(final_state(&p0, r1), final_state(&p1, r1), "r1={r1}");
        }
    }

    #[test]
    fn memory_sides_are_not_converted() {
        // A side containing a store must be left alone.
        let mut b = ProgramBuilder::new();
        let a = b.block("a");
        let t = b.block("t");
        let j = b.block("join");
        b.push(
            a,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(a, j);
        b.push(t, Inst::store(Reg(2), Reg(3), 0));
        b.push(t, Inst::Jump { target: j });
        b.push(j, Inst::Halt);
        b.set_entry(a);
        let mut p = b.finish().unwrap();
        let stats = if_convert(&mut p, 4);
        assert_eq!(stats.converted, 0);
    }

    #[test]
    fn one_sided_hammock_is_converted() {
        // if (r1 != 0) { r2 = r2 + 5 }; join.
        let mut b = ProgramBuilder::new();
        let a = b.block("a");
        let t = b.block("t");
        let j = b.block("join");
        b.push(
            a,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(a, j);
        b.push(
            t,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(5)),
        );
        b.fallthrough(t, j);
        b.push(j, Inst::Halt);
        b.set_entry(a);
        let p0 = b.finish().unwrap();
        let mut p1 = p0.clone();
        let stats = if_convert(&mut p1, 4);
        assert_eq!(stats.converted, 1);
        for r1 in [0u64, 9] {
            let run = |p: &Program| {
                let mut i = Interpreter::new(p, Memory::new());
                i.set_reg(Reg(1), r1);
                i.set_reg(Reg(2), 10);
                i.run(&mut TakenOracle::AlwaysTaken).unwrap();
                i.reg(Reg(2))
            };
            assert_eq!(run(&p0), run(&p1), "r1={r1}");
        }
    }

    #[test]
    fn size_guard_rejects_big_sides() {
        let mut p = diamond();
        let stats = if_convert(&mut p, 0);
        assert_eq!(stats.converted, 0);
    }

    #[test]
    fn register_pressure_skips_instead_of_panicking() {
        // Touch every architected register so no temps are free: the
        // hammock must be left unconverted, not crash the compiler.
        let mut b = ProgramBuilder::new();
        let a = b.block("a");
        let t = b.block("t");
        let j = b.block("join");
        for i in 0..vanguard_isa::NUM_ARCH_REGS as u8 {
            b.push(a, Inst::mov(Reg(i), Operand::Imm(i64::from(i))));
        }
        b.push(
            a,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        b.fallthrough(a, j);
        b.push(
            t,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(5)),
        );
        b.fallthrough(t, j);
        b.push(j, Inst::Halt);
        b.set_entry(a);
        let mut p = b.finish().unwrap();
        let stats = if_convert(&mut p, 4);
        assert_eq!(stats.converted, 0);
        let branches = p
            .iter()
            .flat_map(|(_, blk)| blk.insts())
            .filter(|i| matches!(i, Inst::Branch { .. }))
            .count();
        assert_eq!(branches, 1, "the branch survives untouched");
    }
}

//! Superblock formation via tail duplication for highly-biased branches.

use vanguard_ir::{BranchDirection, Cfg, Profile};
use vanguard_isa::{BlockId, Inst, Program};

/// Outcome of [`form_superblocks`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Join blocks duplicated onto hot paths.
    pub duplicated_blocks: usize,
    /// Instructions added by duplication.
    pub duplicated_insts: usize,
}

/// Forms superblocks along the hot paths of *highly-biased* forward
/// branches (Figure 1's top-left quadrant): join blocks with side
/// entrances are tail-duplicated so the hot path becomes single-entry,
/// letting [`crate::merge_straightline`] fuse it into one long block for
/// the scheduler.
///
/// * `bias_threshold` — minimum bias to qualify (the classic regime,
///   e.g. 0.9; the paper's *contribution* targets branches below this).
/// * `max_dup_insts` — per-site budget of duplicated instructions.
///
/// Run [`crate::merge_straightline`] + [`crate::compact_program`]
/// afterwards to realise the scheduling benefit.
pub fn form_superblocks(
    program: &mut Program,
    profile: &Profile,
    bias_threshold: f64,
    max_dup_insts: usize,
) -> SuperblockStats {
    let mut stats = SuperblockStats::default();
    let sites: Vec<BlockId> = {
        let cfg = Cfg::build(program);
        cfg.branch_blocks(program)
            .filter(|&b| {
                cfg.branch_direction(program, b) == Some(BranchDirection::Forward)
                    && profile
                        .site(b)
                        .map(|s| s.bias() >= bias_threshold && s.executed > 0)
                        .unwrap_or(false)
            })
            .collect()
    };

    for site in sites {
        let mut budget = max_dup_insts;
        // The hot successor of the biased branch. (The site filter above
        // only admits profiled sites, but degrade to a skip regardless.)
        let Some(stats_site) = profile.site(site) else {
            continue;
        };
        let block = program.block(site);
        let Some(Inst::Branch { target, .. }) = block.terminator() else {
            continue;
        };
        let mut cur = if stats_site.majority_taken() {
            *target
        } else {
            match block.fallthrough() {
                Some(ft) => ft,
                None => continue,
            }
        };
        // Walk the hot chain, duplicating side-entered joins.
        for _ in 0..8 {
            let cfg = Cfg::build(program);
            let cur_block = program.block(cur);
            let next = match cur_block.terminator() {
                Some(Inst::Jump { target }) => *target,
                Some(t) if t.is_control() => break, // conditional/halt/call: stop
                _ => match cur_block.fallthrough() {
                    Some(ft) => ft,
                    None => break,
                },
            };
            if next == cur || next == site {
                break; // loop edge
            }
            if cfg.preds(next).len() <= 1 {
                cur = next;
                continue;
            }
            // `next` is a join: duplicate it onto the hot path.
            let join = program.block(next).clone();
            // Only duplicate joins with real work; pure control blocks
            // (e.g. a bare halt/ret) gain nothing from duplication.
            if join.insts().len() > budget || !join.insts().iter().any(|i| !i.is_control()) {
                break;
            }
            budget -= join.insts().len();
            let mut dup = join.clone();
            let dup_name = format!("{}.dup", join.name());
            *dup.insts_mut() = join.insts().to_vec();
            let mut new_block = vanguard_isa::BasicBlock::new(dup_name);
            *new_block.insts_mut() = dup.insts().to_vec();
            new_block.set_fallthrough(join.fallthrough());
            let dup_id = program.add_block(new_block);
            // Re-point the hot edge cur → next to cur → dup.
            let cur_block = program.block_mut(cur);
            match cur_block.insts_mut().last_mut() {
                Some(Inst::Jump { target }) if *target == next => *target = dup_id,
                _ => {
                    if cur_block.fallthrough() == Some(next) {
                        cur_block.set_fallthrough(Some(dup_id));
                    } else {
                        break; // hot edge was the branch-taken edge of a conditional
                    }
                }
            }
            stats.duplicated_blocks += 1;
            stats.duplicated_insts += program.block(dup_id).insts().len();
            cur = dup_id;
        }
    }
    debug_assert!(program.validate().is_ok());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{compact_program, merge_straightline};
    use vanguard_isa::{
        AluOp, CondKind, Interpreter, Memory, Operand, ProgramBuilder, Reg, TakenOracle,
    };

    /// entry --(90% taken)--> hot -> join <- cold; join -> exit.
    fn hammock() -> (Program, BlockId) {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let cold = b.block("cold");
        let hot = b.block("hot");
        let join = b.block("join");
        let x = b.block("exit");
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: hot,
            },
        );
        b.fallthrough(e, cold);
        b.push(
            cold,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(1)),
        );
        b.push(cold, Inst::Jump { target: join });
        b.push(
            hot,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(1)),
        );
        b.push(hot, Inst::Jump { target: join });
        b.push(
            join,
            Inst::alu(
                AluOp::Add,
                Reg(4),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(2)),
            ),
        );
        b.fallthrough(join, x);
        b.push(x, Inst::Halt);
        b.set_entry(e);
        (b.finish().unwrap(), e)
    }

    fn hot_profile(site: BlockId) -> Profile {
        let mut p = Profile::new();
        for i in 0..100 {
            p.record(site, i % 10 != 0, true); // 90% taken
        }
        p
    }

    #[test]
    fn join_is_duplicated_onto_the_hot_path() {
        let (mut p, site) = hammock();
        let before = p.num_blocks();
        let stats = form_superblocks(&mut p, &hot_profile(site), 0.85, 32);
        assert_eq!(stats.duplicated_blocks, 1);
        assert!(p.num_blocks() > before);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn low_bias_sites_are_skipped() {
        let (mut p, site) = hammock();
        let mut profile = Profile::new();
        for i in 0..100 {
            profile.record(site, i % 2 == 0, true); // 50/50
        }
        let stats = form_superblocks(&mut p, &profile, 0.85, 32);
        assert_eq!(stats.duplicated_blocks, 0);
    }

    #[test]
    fn duplication_preserves_semantics_and_enables_merging() {
        let (p0, site) = hammock();
        let mut p1 = p0.clone();
        form_superblocks(&mut p1, &hot_profile(site), 0.85, 32);
        merge_straightline(&mut p1);
        let p1 = compact_program(&p1);
        for r1 in [0u64, 7] {
            let run = |p: &Program| {
                let mut i = Interpreter::new(p, Memory::new());
                i.set_reg(Reg(1), r1);
                i.run(&mut TakenOracle::AlwaysTaken).unwrap();
                (i.reg(Reg(2)), i.reg(Reg(3)), i.reg(Reg(4)))
            };
            assert_eq!(run(&p0), run(&p1), "r1={r1}");
        }
        // After duplication + merging the hot path (entry-taken) runs in a
        // block that contains both the hot work and the duplicated join
        // work: two ALU adds in one block.
        let max_adds = p1
            .iter()
            .map(|(_, b)| {
                b.insts()
                    .iter()
                    .filter(|i| matches!(i, Inst::Alu { .. }))
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert!(
            max_adds >= 2,
            "merged hot path too short:\n{}",
            p1.disassemble()
        );
    }

    #[test]
    fn budget_limits_duplication() {
        let (mut p, site) = hammock();
        let stats = form_superblocks(&mut p, &hot_profile(site), 0.85, 0);
        assert_eq!(stats.duplicated_blocks, 0);
    }
}

//! # vanguard-compiler
//!
//! The compiler passes surrounding the Decomposed Branch Transformation:
//!
//! * [`PredictorOracle`] — adapts any [`vanguard_bpred::DirectionPredictor`]
//!   to the interpreter's prediction interface, so profiling measures the
//!   *same* predictor the hardware will use (the paper profiles TRAIN
//!   inputs in PTLSim with its gshare).
//! * [`profile_program`] — the profile-collection pass producing per-site
//!   bias and predictability ([`vanguard_ir::Profile`]).
//! * [`schedule_program`] — an in-order-aware list scheduler (critical-path
//!   priority, FU-port and width limits), applied to baseline and
//!   transformed code alike, standing in for LLVM's -O3 scheduling.
//! * [`layout_program`] — profile-guided code layout: biased branches are
//!   re-pointed so the likely successor falls through (the classic
//!   superblock-era baseline optimisation).
//! * [`form_superblocks`] — tail duplication for *highly-biased* forward
//!   branches (Figure 1's top-left quadrant).
//! * [`if_convert`] — cmov-style predication of small unbiased hammocks
//!   (Figure 1's bottom-right quadrant), used as an ablation baseline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ifconvert;
mod layout;
mod oracle;
mod profiler;
mod scheduler;
mod superblock;

pub use ifconvert::{if_convert, IfConvertStats};
pub use layout::{compact_program, layout_program, merge_straightline};
pub use oracle::PredictorOracle;
pub use profiler::{profile_program, ProfileError};
pub use scheduler::{schedule_order, schedule_program, SchedConfig};
pub use superblock::{form_superblocks, SuperblockStats};

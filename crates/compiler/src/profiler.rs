//! The profile-collection pass.

use crate::oracle::PredictorOracle;
use std::fmt;
use vanguard_bpred::DirectionPredictor;
use vanguard_ir::Profile;
use vanguard_isa::{ExecError, ExecEvent, InterpConfig, Interpreter, Memory, Program, Reg};

/// Errors from the profiling run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// The profiled program faulted.
    Exec(ExecError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Exec(e) => write!(f, "profiling run failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<ExecError> for ProfileError {
    fn from(e: ExecError) -> Self {
        ProfileError::Exec(e)
    }
}

/// Runs `program` to completion under `predictor` and collects per-site
/// bias and predictability — the paper's TRAIN-input profiling step.
///
/// `init_regs` seeds initial register values; `max_steps` bounds the run.
///
/// # Errors
///
/// Returns [`ProfileError`] if the program faults.
pub fn profile_program<P: DirectionPredictor>(
    program: &Program,
    memory: Memory,
    init_regs: &[(Reg, u64)],
    predictor: P,
    max_steps: u64,
) -> Result<Profile, ProfileError> {
    let mut interp = Interpreter::new(program, memory).with_config(InterpConfig { max_steps });
    for &(r, v) in init_regs {
        interp.set_reg(r, v);
    }
    let mut oracle = PredictorOracle::new(predictor);
    let mut profile = Profile::new();
    let outcome = interp.run_with(&mut oracle, |ev| {
        if let ExecEvent::Branch {
            block,
            taken,
            predicted,
            ..
        } = *ev
        {
            profile.record(block, taken, predicted == taken);
        }
    })?;
    profile.dynamic_insts = outcome.steps;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_bpred::Combined;
    use vanguard_isa::{AluOp, CmpKind, CondKind, Inst, Operand, ProgramBuilder};

    /// A loop over a condition array: branch taken iff mem[r3] != 0.
    fn data_driven_branch(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let head = b.block("head");
        let taken = b.block("taken");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.push(e, Inst::mov(Reg(1), Operand::Imm(n)));
        b.push(e, Inst::mov(Reg(3), Operand::Imm(0x10000)));
        b.fallthrough(e, head);
        b.push(head, Inst::load(Reg(4), Reg(3), 0));
        b.push(
            head,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(4),
                target: taken,
            },
        );
        b.fallthrough(head, latch);
        b.push(
            taken,
            Inst::alu(AluOp::Add, Reg(5), Operand::Reg(Reg(5)), Operand::Imm(1)),
        );
        b.fallthrough(taken, latch);
        b.push(
            latch,
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
        );
        b.push(
            latch,
            Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        b.push(
            latch,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(1),
                b: Operand::Imm(0),
            },
        );
        b.push(
            latch,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: head,
            },
        );
        b.fallthrough(latch, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(e);
        b.finish().unwrap()
    }

    #[test]
    fn profiles_bias_and_predictability_of_a_patterned_branch() {
        // Period-3 pattern T T N: bias = 2/3, predictability ≈ 1 for gshare.
        let n = 3000;
        let p = data_driven_branch(n);
        let pattern: Vec<u64> = (0..n as usize).map(|i| u64::from(i % 3 != 2)).collect();
        let mut mem = Memory::new();
        mem.load_words(0x10000, &pattern);
        let profile =
            profile_program(&p, mem, &[], Combined::ptlsim_default(), 10_000_000).unwrap();
        // Site = the block whose terminator is the data-driven branch.
        let head_site = profile
            .iter()
            .find(|(_, s)| (s.bias() - 2.0 / 3.0).abs() < 0.01)
            .expect("head branch profiled");
        assert!(
            head_site.1.predictability() > 0.9,
            "predictability {}",
            head_site.1.predictability()
        );
        assert!(head_site.1.exceeds_bias_by(0.05));
    }

    #[test]
    fn profiles_an_unpredictable_branch_as_near_bias() {
        // Pseudo-random 50/50 outcomes: predictability ≈ bias ≈ 0.5.
        let n = 4000;
        let p = data_driven_branch(n);
        let mut x = 0x123456789abcdefu64;
        let pattern: Vec<u64> = (0..n as usize)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1
            })
            .collect();
        let mut mem = Memory::new();
        mem.load_words(0x10000, &pattern);
        let profile =
            profile_program(&p, mem, &[], Combined::ptlsim_default(), 10_000_000).unwrap();
        let site = profile
            .iter()
            .find(|(_, s)| s.bias() < 0.6)
            .expect("random branch profiled");
        assert!(
            !site.1.exceeds_bias_by(0.05),
            "unpredictable branch must not qualify: pred {} bias {}",
            site.1.predictability(),
            site.1.bias()
        );
    }

    #[test]
    fn profile_counts_dynamic_instructions() {
        let p = data_driven_branch(10);
        let mut mem = Memory::new();
        mem.load_words(0x10000, &[1u64; 10]);
        let profile =
            profile_program(&p, mem, &[], Combined::ptlsim_default(), 10_000_000).unwrap();
        assert!(profile.dynamic_insts > 50);
        assert_eq!(profile.len(), 2); // head branch + loop latch
    }

    #[test]
    fn faulting_program_reports_error() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::load(Reg(1), Reg(0), 0x99999));
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let r = profile_program(&p, Memory::new(), &[], Combined::ptlsim_default(), 1000);
        assert!(matches!(r, Err(ProfileError::Exec(_))));
    }
}

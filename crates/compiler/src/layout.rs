//! Profile-guided code layout.

use vanguard_ir::{Cfg, Profile};
use vanguard_isa::{BlockId, Inst, Program};

/// Lays out `program` for the profile:
///
/// 1. **Branch inversion** — biased conditional branches are re-pointed so
///    the likely successor is the fall-through (taken branches end fetch
///    groups, so hot fall-through paths fetch at full width).
/// 2. **Chain placement** — blocks are placed in likely-path chains from
///    the entry, improving I$ locality; cold blocks sink to the end.
///
/// This is the classic baseline codegen the paper's LLVM -O3 + PGO setup
/// performs; both the baseline and the transformed program receive it.
pub fn layout_program(program: &mut Program, profile: &Profile) {
    invert_unlikely_branches(program, profile);
    chain_layout(program, profile);
    debug_assert!(program.validate().is_ok());
}

fn invert_unlikely_branches(program: &mut Program, profile: &Profile) {
    let ids: Vec<_> = program.iter().map(|(b, _)| b).collect();
    for bid in ids {
        let Some(stats) = profile.site(bid) else {
            continue;
        };
        if !stats.majority_taken() || stats.executed == 0 {
            continue;
        }
        // Likely taken: invert so the hot path falls through.
        let ft = program.block(bid).fallthrough();
        let block = program.block_mut(bid);
        let Some(Inst::Branch { cond, src, target }) = block.insts_mut().last_mut() else {
            continue;
        };
        let old_target = *target;
        let Some(ft) = ft else { continue };
        *cond = cond.negate();
        *target = ft;
        let _ = src;
        block.set_fallthrough(Some(old_target));
    }
}

fn chain_layout(program: &mut Program, profile: &Profile) {
    let cfg = Cfg::build(program);
    let n = program.num_blocks();
    let mut placed = vec![false; n];
    let mut order: Vec<BlockId> = Vec::with_capacity(n);

    // Seeds: entry first, then remaining blocks in reverse postorder, then
    // unreachable blocks in id order.
    let mut seeds: Vec<BlockId> = cfg.reverse_postorder().to_vec();
    for (bid, _) in program.iter() {
        if !seeds.contains(&bid) {
            seeds.push(bid);
        }
    }

    for seed in seeds {
        let mut cur = seed;
        while !placed[cur.index()] {
            placed[cur.index()] = true;
            order.push(cur);
            // Follow the likely successor: prefer the fall-through, which
            // branch inversion has already made the hot edge.
            let next = likely_successor(program, profile, cur).filter(|s| !placed[s.index()]);
            match next {
                Some(s) => cur = s,
                None => break,
            }
        }
    }
    program.set_layout_order(order);
}

fn likely_successor(program: &Program, profile: &Profile, b: BlockId) -> Option<BlockId> {
    let block = program.block(b);
    match block.terminator() {
        Some(Inst::Jump { target }) => Some(*target),
        Some(Inst::Halt) | Some(Inst::Ret) => None,
        Some(Inst::Call { callee, .. }) => Some(*callee),
        Some(Inst::Branch { target, .. }) => {
            // Inversion has already made the fall-through the likely edge
            // for every profiled branch (and fall-through is the neutral
            // default for unprofiled ones).
            let _ = profile;
            block.fallthrough().or(Some(*target))
        }
        _ => block.fallthrough(),
    }
}

/// Merges straight-line chains: a block ending in an unconditional
/// transfer (jump or pure fall-through) to a single-predecessor block is
/// fused with it, enlarging the list scheduler's scope. Returns the number
/// of merges performed.
pub fn merge_straightline(program: &mut Program) -> usize {
    let mut merges = 0;
    loop {
        let cfg = Cfg::build(program);
        let mut candidate: Option<(BlockId, BlockId)> = None;
        for (bid, block) in program.iter() {
            if !cfg.is_reachable(bid) {
                continue;
            }
            let succ = match block.terminator() {
                Some(Inst::Jump { target }) => Some(*target),
                Some(t) if t.is_control() => None,
                _ => block.fallthrough(),
            };
            let Some(succ) = succ else { continue };
            if succ == bid || cfg.preds(succ) != [bid] {
                continue;
            }
            candidate = Some((bid, succ));
            break;
        }
        let Some((a, b)) = candidate else { break };
        let b_block = program.block(b).clone();
        let a_block = program.block_mut(a);
        if matches!(a_block.insts().last(), Some(Inst::Jump { .. })) {
            a_block.insts_mut().pop();
        }
        a_block.insts_mut().extend(b_block.insts().iter().cloned());
        a_block.set_fallthrough(b_block.fallthrough());
        // b is now unreachable; compact() removes it.
        program.block_mut(b).insts_mut().clear();
        program.block_mut(b).set_fallthrough(Some(a)); // keep valid; dead
        merges += 1;
    }
    debug_assert!(program.validate().is_ok());
    merges
}

/// Removes unreachable blocks, remapping block ids. Keeps layout order of
/// the survivors. Essential for honest static-code-size (PISCS) and I$
/// accounting after merging or duplication passes.
pub fn compact_program(program: &Program) -> Program {
    let cfg = Cfg::build(program);
    let mut remap = vec![None; program.num_blocks()];
    let mut builder = vanguard_isa::ProgramBuilder::new();
    // Preserve the existing layout order among reachable blocks.
    let survivors: Vec<BlockId> = program
        .layout_order()
        .iter()
        .copied()
        .filter(|&b| cfg.is_reachable(b))
        .collect();
    for &old in &survivors {
        let new = builder.block(program.block(old).name().to_string());
        remap[old.index()] = Some(new);
    }
    // Invariant behind the `expect`s below: every block a *reachable*
    // block refers to (jump/branch target, call ret_to, fall-through,
    // entry) is itself reachable in the CFG that `survivors` was built
    // from, so its remap slot was filled by the loop above. A miss here
    // is a Cfg::build bug, not an input-program property — validated
    // programs cannot trigger it.
    for &old in &survivors {
        let new = remap[old.index()].expect("survivor was assigned a new id above");
        let block = program.block(old);
        for inst in block.insts() {
            let mut inst = *inst;
            if let Some(t) = inst.target() {
                inst.set_target(
                    remap[t.index()].expect("target of a reachable block is reachable"),
                );
            }
            if let Inst::Call { ret_to, .. } = &mut inst {
                *ret_to = remap[ret_to.index()].expect("ret_to of a reachable call is reachable");
            }
            builder.push(new, inst);
        }
        if let Some(ft) = block.fallthrough() {
            builder.fallthrough(
                new,
                remap[ft.index()].expect("fall-through of a reachable block is reachable"),
            );
        }
    }
    builder.set_entry(remap[program.entry().index()].expect("entry is reachable by definition"));
    builder
        .finish()
        .expect("compaction preserves program validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{
        AluOp, CondKind, Interpreter, Memory, Operand, ProgramBuilder, Reg, TakenOracle,
    };

    /// entry branches to `hot` 90% of the time; `cold` otherwise.
    fn biased_program() -> (Program, BlockId, BlockId, BlockId) {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let cold = b.block("cold");
        let hot = b.block("hot");
        let x = b.block("exit");
        b.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: hot,
            },
        );
        b.fallthrough(e, cold);
        b.push(cold, Inst::Jump { target: x });
        b.push(hot, Inst::Jump { target: x });
        b.push(x, Inst::Halt);
        b.set_entry(e);
        (b.finish().unwrap(), e, hot, cold)
    }

    fn profile_taken(site: BlockId, taken_of_10: u64) -> Profile {
        let mut p = Profile::new();
        for i in 0..10 {
            p.record(site, i < taken_of_10, true);
        }
        p
    }

    #[test]
    fn likely_taken_branch_is_inverted_to_fallthrough() {
        let (mut p, e, hot, _cold) = biased_program();
        let profile = profile_taken(e, 9);
        layout_program(&mut p, &profile);
        // After inversion the fall-through of entry is the hot block.
        assert_eq!(p.block(e).fallthrough(), Some(hot));
        let Some(Inst::Branch { cond, .. }) = p.block(e).terminator() else {
            panic!("branch expected")
        };
        assert_eq!(*cond, CondKind::Z);
        // And the hot block is laid out immediately after the entry.
        let lo = p.layout_order();
        let epos = lo.iter().position(|&b| b == e).unwrap();
        assert_eq!(lo[epos + 1], hot);
    }

    #[test]
    fn unlikely_branch_is_left_alone() {
        let (mut p, e, hot, cold) = biased_program();
        let profile = profile_taken(e, 2); // mostly not-taken → cold path hot
        let before_term = p.block(e).terminator().cloned();
        layout_program(&mut p, &profile);
        assert_eq!(p.block(e).terminator().cloned(), before_term);
        assert_eq!(p.block(e).fallthrough(), Some(cold));
        let _ = hot;
    }

    #[test]
    fn inversion_preserves_semantics() {
        let (p0, e, _, _) = biased_program();
        let mut p1 = p0.clone();
        layout_program(&mut p1, &profile_taken(e, 10));
        for r1 in [0u64, 1] {
            let run = |p: &Program| {
                let mut i = Interpreter::new(p, Memory::new());
                i.set_reg(Reg(1), r1);
                i.run(&mut TakenOracle::AlwaysTaken).unwrap();
                *i.regs()
            };
            assert_eq!(run(&p0), run(&p1), "r1={r1}");
        }
    }

    #[test]
    fn merge_fuses_single_pred_chains() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let m = b.block("middle");
        let x = b.block("exit");
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(2)),
        );
        b.fallthrough(e, m);
        b.push(
            m,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(3)),
        );
        b.push(m, Inst::Jump { target: x });
        b.push(x, Inst::Halt);
        b.set_entry(e);
        let mut p = b.finish().unwrap();
        let merges = merge_straightline(&mut p);
        assert!(merges >= 2, "merged {merges}");
        let p = compact_program(&p);
        assert_eq!(p.num_blocks(), 1);
        let mut i = Interpreter::new(&p, Memory::new());
        i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(i.reg(Reg(2)), 6);
    }

    #[test]
    fn merge_respects_joins() {
        // A join block with two predecessors must not be merged into one.
        let (mut p, _, _, _) = biased_program();
        let blocks_before = {
            let q = compact_program(&p);
            q.num_blocks()
        };
        merge_straightline(&mut p);
        let q = compact_program(&p);
        // The exit join has 2 preds, so only zero or trivial merges happen.
        assert_eq!(q.num_blocks(), blocks_before);
    }

    #[test]
    fn compact_drops_unreachable_blocks_and_remaps() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let dead = b.block("dead");
        let live = b.block("live");
        b.push(e, Inst::Jump { target: live });
        b.push(dead, Inst::Halt);
        b.push(live, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let q = compact_program(&p);
        assert_eq!(q.num_blocks(), 2);
        assert!(q.code_bytes() < p.code_bytes());
        let mut i = Interpreter::new(&q, Memory::new());
        let out = i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        assert_eq!(out.stop, vanguard_isa::StopReason::Halted);
        let _ = dead;
    }
}

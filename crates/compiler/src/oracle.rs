//! Adapting hardware predictors to the interpreter's oracle interface.

use std::collections::VecDeque;
use vanguard_bpred::{DirectionPredictor, PredMeta};
use vanguard_isa::PredictionOracle;

/// Wraps a [`DirectionPredictor`] as a [`PredictionOracle`] for the
/// functional interpreter.
///
/// The interpreter calls `predict(pc)` when it reaches a branch or
/// `predict` instruction and `update(pc, taken)` at resolution. Updates
/// arrive in prediction order (the compiler never interleaves
/// predict/resolve pairs and ordinary branches resolve immediately), so a
/// FIFO of pending [`PredMeta`] reproduces exactly what the hardware DBB
/// does for decomposed branches.
#[derive(Debug)]
pub struct PredictorOracle<P> {
    predictor: P,
    pending: VecDeque<(u64, PredMeta)>,
}

impl<P: DirectionPredictor> PredictorOracle<P> {
    /// Wraps `predictor`.
    pub fn new(predictor: P) -> Self {
        PredictorOracle {
            predictor,
            pending: VecDeque::new(),
        }
    }

    /// Returns the wrapped predictor.
    pub fn into_inner(self) -> P {
        self.predictor
    }

    /// Borrows the wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl<P: DirectionPredictor> PredictionOracle for PredictorOracle<P> {
    fn predict(&mut self, site_pc: u64) -> bool {
        let meta = self.predictor.predict(site_pc);
        let taken = meta.taken;
        self.pending.push_back((site_pc, meta));
        taken
    }

    fn update(&mut self, site_pc: u64, taken: bool) {
        // Invariant: the interpreter calls `update` only at the
        // resolution of a branch/resolve whose prediction it requested
        // first, and it rejects orphan resolves as ExecError before
        // reaching the oracle — an empty FIFO here is an interpreter
        // bug, not a guest-program property.
        let (pc, meta) = self
            .pending
            .pop_front()
            .expect("interpreter guarantees a matching predict before every update");
        debug_assert_eq!(pc, site_pc, "out-of-order predictor update");
        self.predictor.update(pc, &meta, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_bpred::Gshare;

    #[test]
    fn immediate_update_trains_like_direct_use() {
        let mut direct = Gshare::new(1024, 10);
        let mut via_oracle = PredictorOracle::new(Gshare::new(1024, 10));
        for i in 0..500u64 {
            let taken = i % 3 != 0;
            let m = direct.predict(0x40);
            direct.update(0x40, &m, taken);
            let _p = via_oracle.predict(0x40);
            via_oracle.update(0x40, taken);
        }
        // Identical training history ⇒ identical next prediction.
        let d = direct.predict(0x40);
        let o = via_oracle.predictor().clone();
        let mut o = o;
        let om = o.predict(0x40);
        assert_eq!(d.taken, om.taken);
    }

    #[test]
    fn deferred_update_uses_prediction_time_metadata() {
        // Predict twice (as for two in-flight decomposed branches whose
        // resolves arrive later), then update in FIFO order.
        let mut oracle = PredictorOracle::new(Gshare::new(1024, 10));
        let _a = oracle.predict(0x100);
        let _b = oracle.predict(0x200);
        oracle.update(0x100, true);
        oracle.update(0x200, false);
        // No panic, FIFO matched; predictor trained both sites.
        let _c = oracle.predict(0x100);
    }

    #[test]
    #[should_panic(expected = "matching predict before every update")]
    fn unmatched_update_panics() {
        let mut oracle = PredictorOracle::new(Gshare::new(64, 6));
        oracle.update(0x100, true);
    }
}

//! In-order-aware list scheduling.

use vanguard_ir::{DepDag, DepKind};
use vanguard_isa::{FuClass, Inst, Program};

/// Resource model the scheduler targets (mirrors the machine's issue
/// constraints so the static schedule and the dynamic pipeline agree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Issue width.
    pub width: usize,
    /// INT ports per cycle.
    pub fu_int: usize,
    /// LD/ST ports per cycle.
    pub fu_ldst: usize,
    /// FP ports per cycle.
    pub fu_fp: usize,
}

impl SchedConfig {
    /// Matches the simulator machine configuration's port mix for a width.
    pub fn for_width(width: usize) -> Self {
        SchedConfig {
            width,
            fu_int: 2,
            fu_ldst: 2,
            fu_fp: 4,
        }
    }
}

/// Reorders every block of `program` with a latency-aware greedy list
/// scheduler (critical-path priority), respecting dependences and the
/// machine's FU ports. Returns the number of instructions that moved.
///
/// On an in-order machine this is where most of the "compiler quality"
/// lives: long-latency loads are started as early as dependences allow,
/// and the consumers (including branch-condition compares) sink toward
/// their uses.
pub fn schedule_program(program: &mut Program, config: &SchedConfig) -> usize {
    let mut moved = 0;
    let ids: Vec<_> = program.iter().map(|(b, _)| b).collect();
    for bid in ids {
        let block = program.block(bid);
        let order = schedule_order(block.insts(), config);
        let changed = order.iter().enumerate().filter(|&(i, &o)| i != o).count();
        if changed > 0 {
            moved += changed;
            let insts = block.insts().to_vec();
            let reordered: Vec<Inst> = order.into_iter().map(|i| insts[i]).collect();
            *program.block_mut(bid).insts_mut() = reordered;
        }
    }
    debug_assert!(program.validate().is_ok());
    moved
}

/// Computes the scheduled order of a block's instructions (indices into
/// the original sequence).
pub fn schedule_order(insts: &[Inst], config: &SchedConfig) -> Vec<usize> {
    let n = insts.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut block = vanguard_isa::BasicBlock::new("sched");
    block.insts_mut().extend(insts.iter().cloned());
    let dag = DepDag::build(&block);
    let lat: Vec<u32> = insts.iter().map(Inst::base_latency).collect();
    let priority = dag.critical_path_from(&lat);

    let mut in_degree: Vec<usize> = (0..n).map(|i| dag.in_degree(i)).collect();
    let mut earliest = vec![0u64; n];
    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cycle = 0u64;

    while order.len() < n {
        let mut int_slots = config.fu_int.min(config.width);
        let mut ldst_slots = config.fu_ldst.min(config.width);
        let mut fp_slots = config.fu_fp.min(config.width);
        let mut width = config.width;
        let mut progressed = false;
        loop {
            // Pick the highest-priority ready instruction that fits.
            let mut best: Option<usize> = None;
            for i in 0..n {
                if scheduled[i] || in_degree[i] != 0 || earliest[i] > cycle {
                    continue;
                }
                let fits = match insts[i].fu_class() {
                    FuClass::Int => int_slots > 0,
                    FuClass::LdSt => ldst_slots > 0,
                    FuClass::Fp => fp_slots > 0,
                    FuClass::None => true,
                };
                if !fits {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) if priority[i] > priority[b] => Some(i),
                    other => other,
                };
            }
            let Some(i) = best else { break };
            if width == 0 {
                break;
            }
            width -= 1;
            match insts[i].fu_class() {
                FuClass::Int => int_slots -= 1,
                FuClass::LdSt => ldst_slots -= 1,
                FuClass::Fp => fp_slots -= 1,
                FuClass::None => {}
            }
            scheduled[i] = true;
            order.push(i);
            progressed = true;
            for e in dag.succs(i) {
                in_degree[e.to] -= 1;
                let delay = match e.kind {
                    DepKind::Raw => u64::from(lat[i]),
                    // Anti/output/memory/control order is satisfied by
                    // same-or-later-cycle in-order issue.
                    _ => 0,
                };
                earliest[e.to] = earliest[e.to].max(cycle + delay);
            }
            if order.len() == n {
                break;
            }
        }
        if !progressed || order.len() < n {
            cycle += 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, BlockId, CmpKind, CondKind, Operand, ProgramBuilder, Reg};

    fn cfg() -> SchedConfig {
        SchedConfig::for_width(4)
    }

    #[test]
    fn loads_are_hoisted_above_independent_alu_work() {
        // alu; alu; load; use-of-load — the load should schedule first.
        let insts = vec![
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(2)),
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(3)),
            Inst::load(Reg(3), Reg(10), 0),
            Inst::alu(AluOp::Add, Reg(4), Operand::Reg(Reg(3)), Operand::Imm(0)),
        ];
        let order = schedule_order(&insts, &cfg());
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(2) == 0, "load first, got order {order:?}");
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn dependences_are_never_violated() {
        let insts = vec![
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(1)),
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(1)),
            Inst::store(Reg(2), Reg(3), 0),
            Inst::load(Reg(4), Reg(3), 0),
        ];
        let order = schedule_order(&insts, &cfg());
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3), "load may not pass the may-alias store");
    }

    #[test]
    fn terminator_stays_last() {
        let insts = vec![
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(1),
                a: Reg(2),
                b: Operand::Imm(0),
            },
            Inst::load(Reg(3), Reg(4), 0),
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: BlockId(0),
            },
        ];
        let order = schedule_order(&insts, &cfg());
        assert_eq!(*order.last().unwrap(), 2, "branch last, got {order:?}");
    }

    #[test]
    fn schedule_program_preserves_semantics() {
        use vanguard_isa::{Interpreter, Memory, TakenOracle};
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        b.push(e, Inst::mov(Reg(9), Operand::Imm(0x9000)));
        b.push(e, Inst::store(Reg(9), Reg(9), 0));
        b.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(5), Operand::Imm(6)),
        );
        b.push(e, Inst::load(Reg(2), Reg(9), 0));
        b.push(
            e,
            Inst::alu(
                AluOp::Mul,
                Reg(3),
                Operand::Reg(Reg(1)),
                Operand::Reg(Reg(2)),
            ),
        );
        b.push(e, Inst::Halt);
        b.set_entry(e);
        let p0 = b.finish().unwrap();
        let mut p1 = p0.clone();
        schedule_program(&mut p1, &cfg());
        assert!(p1.validate().is_ok());

        let run = |p: &Program| {
            let mut i = Interpreter::new(p, Memory::new());
            i.run(&mut TakenOracle::AlwaysTaken).unwrap();
            *i.regs()
        };
        assert_eq!(run(&p0), run(&p1));
    }

    #[test]
    fn empty_and_singleton_blocks_are_untouched() {
        assert!(schedule_order(&[], &cfg()).is_empty());
        assert_eq!(schedule_order(&[Inst::Halt], &cfg()), vec![0]);
    }

    #[test]
    fn port_limits_shape_the_schedule() {
        // Three independent loads with 2 LD/ST ports: the third load must
        // wait a cycle, letting an independent ALU op slot in earlier.
        let insts = vec![
            Inst::load(Reg(1), Reg(10), 0),
            Inst::load(Reg(2), Reg(10), 8),
            Inst::load(Reg(3), Reg(10), 16),
            Inst::alu(AluOp::Add, Reg(4), Operand::Imm(1), Operand::Imm(1)),
        ];
        let order = schedule_order(&insts, &cfg());
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        // The ALU op beats the third load into the first issue group.
        assert!(pos(3) < 3.max(pos(2)), "order {order:?}");
    }
}

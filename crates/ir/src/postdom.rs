//! Post-dominator tree (over the reverse CFG).

use crate::cfg::Cfg;
use vanguard_isa::{BlockId, Inst, Program};

/// Post-dominators: `a` post-dominates `b` when every path from `b` to a
/// program exit passes through `a`.
///
/// Used for control-equivalence queries: the join of a hammock
/// post-dominates the branch, which is what makes correction-free
/// re-convergence (and if-conversion legality) checkable structurally.
///
/// Programs may have several exits (`halt`/`ret` blocks); they are joined
/// through a virtual exit node.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// Immediate post-dominator; `None` = the virtual exit (or
    /// unreachable-from-exit).
    ipdom: Vec<Option<BlockId>>,
    exits: Vec<BlockId>,
}

impl PostDomTree {
    /// Computes post-dominators of `program`.
    pub fn build(program: &Program, cfg: &Cfg) -> Self {
        let n = program.num_blocks();
        let exits: Vec<BlockId> = program
            .iter()
            .filter(|(bid, b)| {
                cfg.is_reachable(*bid)
                    && matches!(b.terminator(), Some(Inst::Halt) | Some(Inst::Ret))
            })
            .map(|(bid, _)| bid)
            .collect();

        // Reverse postorder of the *reverse* CFG from the virtual exit.
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        for &e in &exits {
            if visited[e.index()] {
                continue;
            }
            visited[e.index()] = true;
            stack.push((e, 0));
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                let preds = cfg.preds(b);
                if *i < preds.len() {
                    let next = preds[*i];
                    *i += 1;
                    if !visited[next.index()] {
                        visited[next.index()] = true;
                        stack.push((next, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in post.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        // Cooper–Harvey–Kennedy on the reverse graph; exits' ipdom is the
        // virtual exit (represented as self-mapping internally).
        let mut ipdom: Vec<Option<BlockId>> = vec![None; n];
        for &e in &exits {
            ipdom[e.index()] = Some(e);
        }
        // Same invariant as DomTree::build, on the reverse graph: the
        // caller only passes successors whose ipdom slot is set, and the
        // finger chains walk through processed nodes toward an exit,
        // whose slots are seeded above.
        let intersect = |ipdom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = ipdom[a.index()].expect("finger chain stays within processed nodes");
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = ipdom[b.index()].expect("finger chain stays within processed nodes");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &post {
                if exits.contains(&b) {
                    continue;
                }
                let mut new: Option<BlockId> = None;
                for &s in cfg.succs(b) {
                    if ipdom[s.index()].is_none() {
                        continue;
                    }
                    new = Some(match new {
                        None => s,
                        Some(cur) => {
                            // Chains rooted under different exits only meet
                            // at the virtual node: self-map as a sentinel.
                            if chains_diverge(&ipdom, cur, s) {
                                b
                            } else {
                                intersect(&ipdom, cur, s)
                            }
                        }
                    });
                }
                if new.is_some() && new != ipdom[b.index()] {
                    ipdom[b.index()] = new;
                    changed = true;
                }
            }
        }
        // Self-mapped nodes (exits and virtual-exit-pinned joins) expose
        // as None.
        for (i, slot) in ipdom.iter_mut().enumerate() {
            if *slot == Some(BlockId(i as u32)) {
                *slot = None;
            }
        }
        PostDomTree { ipdom, exits }
    }

    /// Immediate post-dominator (`None` for exits and blocks that cannot
    /// reach an exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// Whether `a` post-dominates `b` (reflexive; false when `b` cannot
    /// reach an exit).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(next) => cur = next,
                None => return self.exits.contains(&cur) && cur == a,
            }
        }
    }

    /// The exit blocks found.
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }
}

/// With multiple exits the intersection walk can cycle; detect the case
/// where `a` and `b` sit under different self-mapped roots (exit trees or
/// virtual-exit-pinned nodes) and would never meet.
fn chains_diverge(ipdom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let root = |mut x: BlockId| -> BlockId {
        let mut guard = 0;
        while let Some(n) = ipdom[x.index()] {
            if n == x || guard > ipdom.len() {
                break;
            }
            x = n;
            guard += 1;
        }
        x
    };
    root(a) != root(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::parse_program;

    fn analyse(text: &str) -> (vanguard_isa::Program, Cfg) {
        let p = parse_program(text).expect("parses");
        let cfg = Cfg::build(&p);
        (p, cfg)
    }

    #[test]
    fn hammock_join_postdominates_the_branch() {
        let (p, cfg) = analyse(
            r"
bb0 <a>:
    cmp.ne r2, r1, #0
    br.nz r2, bb2
    ; fallthrough -> bb1
bb1 <f>:
    jmp bb3
bb2 <t>:
    ; fallthrough -> bb3
bb3 <join>:
    ; fallthrough -> bb4
bb4 <exit>:
    halt
",
        );
        let pd = PostDomTree::build(&p, &cfg);
        assert!(pd.post_dominates(BlockId(3), BlockId(0)));
        assert!(pd.post_dominates(BlockId(4), BlockId(0)));
        assert!(!pd.post_dominates(BlockId(1), BlockId(0)), "one arm only");
        assert!(!pd.post_dominates(BlockId(2), BlockId(0)));
        assert_eq!(pd.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pd.ipdom(BlockId(4)), None);
        assert_eq!(pd.exits(), &[BlockId(4)]);
    }

    #[test]
    fn post_dominance_is_reflexive() {
        let (p, cfg) = analyse("bb0 <a>:\n    halt\n");
        let pd = PostDomTree::build(&p, &cfg);
        assert!(pd.post_dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn loop_exit_postdominates_the_body() {
        let (p, cfg) = analyse(
            r"
bb0 <entry>:
    nop
    ; fallthrough -> bb1
bb1 <body>:
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb2
bb2 <exit>:
    halt
",
        );
        let pd = PostDomTree::build(&p, &cfg);
        assert!(pd.post_dominates(BlockId(2), BlockId(1)));
        assert!(pd.post_dominates(BlockId(2), BlockId(0)));
        assert!(!pd.post_dominates(BlockId(1), BlockId(2)));
    }

    #[test]
    fn multiple_exits_share_no_postdominator() {
        let (p, cfg) = analyse(
            r"
bb0 <a>:
    cmp.ne r2, r1, #0
    br.nz r2, bb2
    ; fallthrough -> bb1
bb1 <f>:
    halt
bb2 <t>:
    halt
",
        );
        let pd = PostDomTree::build(&p, &cfg);
        // Neither exit post-dominates the branch.
        assert!(!pd.post_dominates(BlockId(1), BlockId(0)));
        assert!(!pd.post_dominates(BlockId(2), BlockId(0)));
        assert_eq!(pd.exits().len(), 2);
    }
}

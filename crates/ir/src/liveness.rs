//! Backward live-register dataflow.

use crate::cfg::Cfg;
use crate::regset::RegSet;
use vanguard_isa::{BlockId, Program};

/// Per-block live-in/live-out register sets.
///
/// Drives two legality questions in the Decomposed Branch Transformation:
///
/// * an instruction hoisted from a successor must not clobber a register
///   that is **live-in on the alternate path** (or a temporary must be
///   introduced, §3);
/// * temporaries are drawn from registers dead across the region.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    /// Per-block (use, def) summary.
    use_def: Vec<(RegSet, RegSet)>,
}

impl Liveness {
    /// Computes liveness for `program` using its [`Cfg`].
    pub fn build(program: &Program, cfg: &Cfg) -> Self {
        let n = program.num_blocks();
        let mut use_def = Vec::with_capacity(n);
        for (_, block) in program.iter() {
            let mut uses = RegSet::new();
            let mut defs = RegSet::new();
            for inst in block.insts() {
                for s in inst.srcs() {
                    if !defs.contains(s) {
                        uses.insert(s);
                    }
                }
                if let Some(d) = inst.dst() {
                    defs.insert(d);
                }
            }
            use_def.push((uses, defs));
        }
        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        // Iterate to fixpoint, visiting blocks in postorder (reverse RPO)
        // for fast convergence.
        let order: Vec<BlockId> = cfg.reverse_postorder().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = RegSet::new();
                for &s in cfg.succs(b) {
                    out.union_in_place(&live_in[s.index()]);
                }
                let (uses, defs) = &use_def[b.index()];
                let inn = uses.union(&out.difference(defs));
                if out != live_out[b.index()] {
                    live_out[b.index()] = out;
                    changed = true;
                }
                if inn != live_in[b.index()] {
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
        }
        Liveness {
            live_in,
            live_out,
            use_def,
        }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.index()]
    }

    /// Registers read before any write in `b`.
    pub fn uses(&self, b: BlockId) -> &RegSet {
        &self.use_def[b.index()].0
    }

    /// Registers written anywhere in `b`.
    pub fn defs(&self, b: BlockId) -> &RegSet {
        &self.use_def[b.index()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, CondKind, Inst, Operand, ProgramBuilder, Reg};

    #[test]
    fn straightline_liveness() {
        // entry: r1 = r2 + 1; exit: r3 = r1 + r4; halt
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        let x = pb.block("exit");
        pb.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Reg(Reg(2)), Operand::Imm(1)),
        );
        pb.fallthrough(e, x);
        pb.push(
            x,
            Inst::alu(
                AluOp::Add,
                Reg(3),
                Operand::Reg(Reg(1)),
                Operand::Reg(Reg(4)),
            ),
        );
        pb.push(x, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let lv = Liveness::build(&p, &cfg);
        assert!(lv.live_in(e).contains(Reg(2)));
        assert!(lv.live_in(e).contains(Reg(4)));
        assert!(!lv.live_in(e).contains(Reg(1)), "r1 defined before use");
        assert!(lv.live_out(e).contains(Reg(1)));
        assert!(!lv.live_out(x).contains(Reg(3)), "dead after final use");
    }

    #[test]
    fn diamond_merges_alternate_path_liveness() {
        // entry: br r1 ? then : else; then uses r5; else uses r6.
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        let t = pb.block("then");
        let f = pb.block("else");
        pb.push(
            e,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: t,
            },
        );
        pb.fallthrough(e, f);
        pb.push(
            t,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(5)), Operand::Imm(0)),
        );
        pb.push(t, Inst::Halt);
        pb.push(
            f,
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(6)), Operand::Imm(0)),
        );
        pb.push(f, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let lv = Liveness::build(&p, &cfg);
        assert!(lv.live_out(e).contains(Reg(5)));
        assert!(lv.live_out(e).contains(Reg(6)));
        assert!(lv.live_in(e).contains(Reg(1)));
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // body: r1 = r1 + 1; br r2 -> body. r1 is live around the loop.
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        let body = pb.block("body");
        let x = pb.block("exit");
        pb.push(e, Inst::Nop);
        pb.fallthrough(e, body);
        pb.push(
            body,
            Inst::alu(AluOp::Add, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        pb.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: body,
            },
        );
        pb.fallthrough(body, x);
        pb.push(x, Inst::store(Reg(1), Reg(3), 0));
        pb.push(x, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let lv = Liveness::build(&p, &cfg);
        assert!(lv.live_in(body).contains(Reg(1)));
        assert!(lv.live_out(body).contains(Reg(1)));
        assert!(
            lv.live_in(e).contains(Reg(1)),
            "upward-exposed through loop"
        );
    }

    #[test]
    fn use_def_summaries() {
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        pb.push(
            e,
            Inst::alu(AluOp::Add, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
        );
        pb.push(e, Inst::store(Reg(1), Reg(2), 0));
        pb.push(e, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let lv = Liveness::build(&p, &cfg);
        assert!(lv.uses(e).contains(Reg(1)), "r1 read before written");
        assert!(lv.uses(e).contains(Reg(2)));
        assert!(lv.defs(e).contains(Reg(1)));
        assert!(!lv.defs(e).contains(Reg(2)));
    }
}

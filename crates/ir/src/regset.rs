//! Compact register sets.

use std::fmt;
use vanguard_isa::{Reg, NUM_ARCH_REGS};

/// A set of architected registers, backed by a 64-bit mask.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set of all architected registers.
    pub fn all() -> Self {
        RegSet(u64::MAX >> (64 - NUM_ARCH_REGS))
    }

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(&self, other: &RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// In-place union; returns `true` if the set changed (dataflow
    /// convergence test).
    pub fn union_in_place(&mut self, other: &RegSet) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates members in index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        let bits = self.0;
        (0..NUM_ARCH_REGS as u8)
            .filter(move |i| bits & (1 << i) != 0)
            .map(Reg)
    }

    /// The lowest-numbered register *not* in the set, if any (temporary
    /// allocation helper).
    pub fn first_free(&self) -> Option<Reg> {
        let free = !self.0 & (u64::MAX >> (64 - NUM_ARCH_REGS));
        if free == 0 {
            None
        } else {
            Some(Reg(free.trailing_zeros() as u8))
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        s.insert(Reg(3));
        s.insert(Reg(63));
        assert!(s.contains(Reg(3)));
        assert!(s.contains(Reg(63)));
        assert!(!s.contains(Reg(4)));
        s.remove(Reg(3));
        assert!(!s.contains(Reg(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a: RegSet = [Reg(1), Reg(2), Reg(3)].into_iter().collect();
        let b: RegSet = [Reg(2), Reg(3), Reg(4)].into_iter().collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 2);
        let d = a.difference(&b);
        assert!(d.contains(Reg(1)) && d.len() == 1);
    }

    #[test]
    fn union_in_place_reports_change() {
        let mut a: RegSet = [Reg(1)].into_iter().collect();
        let b: RegSet = [Reg(2)].into_iter().collect();
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b));
    }

    #[test]
    fn first_free_skips_members() {
        let mut s = RegSet::new();
        s.insert(Reg(0));
        s.insert(Reg(1));
        assert_eq!(s.first_free(), Some(Reg(2)));
        assert_eq!(RegSet::all().first_free(), None);
    }

    #[test]
    fn iter_is_ordered() {
        let s: RegSet = [Reg(9), Reg(1), Reg(30)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![Reg(1), Reg(9), Reg(30)]);
    }

    #[test]
    fn all_covers_the_file() {
        assert_eq!(RegSet::all().len(), NUM_ARCH_REGS);
    }
}

//! Profile data: per-branch-site bias and predictability.

use std::collections::BTreeMap;
use vanguard_isa::BlockId;

/// Execution statistics for one static conditional-branch site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchSiteStats {
    /// Dynamic executions.
    pub executed: u64,
    /// Taken outcomes.
    pub taken: u64,
    /// Outcomes the profiling predictor got right.
    pub predicted_correctly: u64,
}

impl BranchSiteStats {
    /// Records one execution.
    pub fn record(&mut self, taken: bool, predicted_correctly: bool) {
        self.executed += 1;
        self.taken += taken as u64;
        self.predicted_correctly += predicted_correctly as u64;
    }

    /// Bias: frequency of the more common direction, in `[0.5, 1]`
    /// (Figure 2/3's notion — a 60/40 branch has bias 0.6).
    pub fn bias(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        let t = self.taken as f64 / self.executed as f64;
        t.max(1.0 - t)
    }

    /// Predictability: the profiling predictor's accuracy on this site.
    pub fn predictability(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.predicted_correctly as f64 / self.executed as f64
    }

    /// The paper's candidate test (§5): predictability exceeds bias by at
    /// least `threshold` (0.05 in the evaluation).
    pub fn exceeds_bias_by(&self, threshold: f64) -> bool {
        self.predictability() - self.bias() >= threshold
    }

    /// The more common direction (`true` = taken).
    pub fn majority_taken(&self) -> bool {
        2 * self.taken >= self.executed
    }
}

/// A program profile: statistics per conditional-branch block, keyed by the
/// block whose terminator is the branch.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    sites: BTreeMap<BlockId, BranchSiteStats>,
    /// Total dynamic instructions in the profiled run.
    pub dynamic_insts: u64,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of the branch terminating `block`.
    pub fn record(&mut self, block: BlockId, taken: bool, predicted_correctly: bool) {
        self.sites
            .entry(block)
            .or_default()
            .record(taken, predicted_correctly);
    }

    /// Statistics for one site.
    pub fn site(&self, block: BlockId) -> Option<&BranchSiteStats> {
        self.sites.get(&block)
    }

    /// Iterates `(block, stats)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BranchSiteStats)> {
        self.sites.iter().map(|(&b, s)| (b, s))
    }

    /// Number of profiled sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether any site was profiled.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites sorted by execution count, hottest first (the paper profiles
    /// the top-75 most-executed forward branches for Figures 2/3).
    pub fn hottest(&self, limit: usize) -> Vec<(BlockId, BranchSiteStats)> {
        let mut v: Vec<_> = self.sites.iter().map(|(&b, &s)| (b, s)).collect();
        v.sort_by(|a, b| b.1.executed.cmp(&a.1.executed).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }

    /// Misses per thousand profiled instructions across all sites.
    pub fn mppki(&self) -> f64 {
        if self.dynamic_insts == 0 {
            return 0.0;
        }
        let misses: u64 = self
            .sites
            .values()
            .map(|s| s.executed - s.predicted_correctly)
            .sum();
        misses as f64 * 1000.0 / self.dynamic_insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_and_predictability() {
        let mut s = BranchSiteStats::default();
        for i in 0..100 {
            // 60/40 direction, predictor right 90% of the time.
            s.record(i % 10 < 6, i % 10 != 0);
        }
        assert!((s.bias() - 0.6).abs() < 1e-12);
        assert!((s.predictability() - 0.9).abs() < 1e-12);
        assert!(s.exceeds_bias_by(0.05));
        assert!(!s.exceeds_bias_by(0.35));
        assert!(s.majority_taken());
    }

    #[test]
    fn empty_site_is_safe() {
        let s = BranchSiteStats::default();
        assert_eq!(s.bias(), 0.0);
        assert_eq!(s.predictability(), 0.0);
    }

    #[test]
    fn hottest_orders_by_execution() {
        let mut p = Profile::new();
        for _ in 0..10 {
            p.record(BlockId(1), true, true);
        }
        for _ in 0..5 {
            p.record(BlockId(2), false, true);
        }
        for _ in 0..20 {
            p.record(BlockId(3), true, false);
        }
        let top = p.hottest(2);
        assert_eq!(top[0].0, BlockId(3));
        assert_eq!(top[1].0, BlockId(1));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn mppki_counts_misses_per_kiloinst() {
        let mut p = Profile::new();
        p.dynamic_insts = 10_000;
        for i in 0..100 {
            p.record(BlockId(0), true, i % 2 == 0); // 50 misses
        }
        assert!((p.mppki() - 5.0).abs() < 1e-12);
    }
}

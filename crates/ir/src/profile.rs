//! Profile data: per-branch-site bias and predictability.

use std::collections::BTreeMap;
use vanguard_isa::BlockId;

/// Execution statistics for one static conditional-branch site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchSiteStats {
    /// Dynamic executions.
    pub executed: u64,
    /// Taken outcomes.
    pub taken: u64,
    /// Outcomes the profiling predictor got right.
    pub predicted_correctly: u64,
}

impl BranchSiteStats {
    /// Records one execution.
    pub fn record(&mut self, taken: bool, predicted_correctly: bool) {
        self.executed += 1;
        self.taken += taken as u64;
        self.predicted_correctly += predicted_correctly as u64;
    }

    /// Bias: frequency of the more common direction, in `[0.5, 1]`
    /// (Figure 2/3's notion — a 60/40 branch has bias 0.6).
    pub fn bias(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        let t = self.taken as f64 / self.executed as f64;
        t.max(1.0 - t)
    }

    /// Predictability: the profiling predictor's accuracy on this site.
    pub fn predictability(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.predicted_correctly as f64 / self.executed as f64
    }

    /// The paper's candidate test (§5): predictability exceeds bias by at
    /// least `threshold` (0.05 in the evaluation).
    pub fn exceeds_bias_by(&self, threshold: f64) -> bool {
        self.predictability() - self.bias() >= threshold
    }

    /// The more common direction (`true` = taken).
    pub fn majority_taken(&self) -> bool {
        2 * self.taken >= self.executed
    }
}

/// A program profile: statistics per conditional-branch block, keyed by the
/// block whose terminator is the branch.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    sites: BTreeMap<BlockId, BranchSiteStats>,
    /// Total dynamic instructions in the profiled run.
    pub dynamic_insts: u64,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of the branch terminating `block`.
    pub fn record(&mut self, block: BlockId, taken: bool, predicted_correctly: bool) {
        self.sites
            .entry(block)
            .or_default()
            .record(taken, predicted_correctly);
    }

    /// Statistics for one site.
    pub fn site(&self, block: BlockId) -> Option<&BranchSiteStats> {
        self.sites.get(&block)
    }

    /// Iterates `(block, stats)` in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BranchSiteStats)> {
        self.sites.iter().map(|(&b, s)| (b, s))
    }

    /// Number of profiled sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether any site was profiled.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites sorted by execution count, hottest first (the paper profiles
    /// the top-75 most-executed forward branches for Figures 2/3).
    pub fn hottest(&self, limit: usize) -> Vec<(BlockId, BranchSiteStats)> {
        let mut v: Vec<_> = self.sites.iter().map(|(&b, &s)| (b, s)).collect();
        v.sort_by(|a, b| b.1.executed.cmp(&a.1.executed).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }

    /// Serializes to a flat little-endian byte image (for the engine's
    /// crash-safe disk cache): `dynamic_insts`, site count, then per site
    /// `(block, executed, taken, predicted_correctly)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.sites.len() * 28);
        out.extend_from_slice(&self.dynamic_insts.to_le_bytes());
        out.extend_from_slice(&(self.sites.len() as u64).to_le_bytes());
        for (&block, s) in &self.sites {
            out.extend_from_slice(&block.0.to_le_bytes());
            out.extend_from_slice(&s.executed.to_le_bytes());
            out.extend_from_slice(&s.taken.to_le_bytes());
            out.extend_from_slice(&s.predicted_correctly.to_le_bytes());
        }
        out
    }

    /// Deserializes a [`Profile::to_bytes`] image, validating structure.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation (truncation, trailing
    /// garbage, or a length/count mismatch).
    pub fn from_bytes(bytes: &[u8]) -> Result<Profile, &'static str> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], &'static str> {
            if bytes.len() < n {
                return Err("truncated profile image");
            }
            let (head, rest) = bytes.split_at(n);
            *bytes = rest;
            Ok(head)
        }
        fn take_u64(bytes: &mut &[u8]) -> Result<u64, &'static str> {
            Ok(u64::from_le_bytes(take(bytes, 8)?.try_into().unwrap()))
        }
        let mut rest = bytes;
        let dynamic_insts = take_u64(&mut rest)?;
        let count = take_u64(&mut rest)?;
        if count > (rest.len() as u64) / 28 {
            return Err("site count exceeds payload length");
        }
        let mut sites = BTreeMap::new();
        for _ in 0..count {
            let block = u32::from_le_bytes(take(&mut rest, 4)?.try_into().unwrap());
            let executed = take_u64(&mut rest)?;
            let taken = take_u64(&mut rest)?;
            let predicted_correctly = take_u64(&mut rest)?;
            sites.insert(
                BlockId(block),
                BranchSiteStats {
                    executed,
                    taken,
                    predicted_correctly,
                },
            );
        }
        if !rest.is_empty() {
            return Err("trailing bytes after profile image");
        }
        Ok(Profile {
            sites,
            dynamic_insts,
        })
    }

    /// Misses per thousand profiled instructions across all sites.
    pub fn mppki(&self) -> f64 {
        if self.dynamic_insts == 0 {
            return 0.0;
        }
        let misses: u64 = self
            .sites
            .values()
            .map(|s| s.executed - s.predicted_correctly)
            .sum();
        misses as f64 * 1000.0 / self.dynamic_insts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_and_predictability() {
        let mut s = BranchSiteStats::default();
        for i in 0..100 {
            // 60/40 direction, predictor right 90% of the time.
            s.record(i % 10 < 6, i % 10 != 0);
        }
        assert!((s.bias() - 0.6).abs() < 1e-12);
        assert!((s.predictability() - 0.9).abs() < 1e-12);
        assert!(s.exceeds_bias_by(0.05));
        assert!(!s.exceeds_bias_by(0.35));
        assert!(s.majority_taken());
    }

    #[test]
    fn empty_site_is_safe() {
        let s = BranchSiteStats::default();
        assert_eq!(s.bias(), 0.0);
        assert_eq!(s.predictability(), 0.0);
    }

    #[test]
    fn hottest_orders_by_execution() {
        let mut p = Profile::new();
        for _ in 0..10 {
            p.record(BlockId(1), true, true);
        }
        for _ in 0..5 {
            p.record(BlockId(2), false, true);
        }
        for _ in 0..20 {
            p.record(BlockId(3), true, false);
        }
        let top = p.hottest(2);
        assert_eq!(top[0].0, BlockId(3));
        assert_eq!(top[1].0, BlockId(1));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn byte_roundtrip_preserves_every_site() {
        let mut p = Profile::new();
        p.dynamic_insts = 123_456;
        for i in 0..50u32 {
            for j in 0..(i as u64 + 1) {
                p.record(BlockId(i * 3), j % 3 == 0, j % 2 == 0);
            }
        }
        let bytes = p.to_bytes();
        let back = Profile::from_bytes(&bytes).unwrap();
        assert_eq!(back.dynamic_insts, p.dynamic_insts);
        assert_eq!(back.len(), p.len());
        for (b, s) in p.iter() {
            assert_eq!(back.site(b), Some(s));
        }
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        let mut p = Profile::new();
        p.record(BlockId(7), true, true);
        let bytes = p.to_bytes();
        assert!(Profile::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Profile::from_bytes(&long).is_err());
        let mut lying = bytes;
        lying[8] = 200; // claim 200 sites with one site's payload
        assert!(Profile::from_bytes(&lying).is_err());
    }

    #[test]
    fn mppki_counts_misses_per_kiloinst() {
        let mut p = Profile::new();
        p.dynamic_insts = 10_000;
        for i in 0..100 {
            p.record(BlockId(0), true, i % 2 == 0); // 50 misses
        }
        assert!((p.mppki() - 5.0).abs() < 1e-12);
    }
}

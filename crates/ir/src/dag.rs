//! Intra-block dependence DAGs for list scheduling.

use vanguard_isa::{BasicBlock, Inst};

/// Kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write (true dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
    /// Memory ordering (store↔store, load↔store; loads may reorder with
    /// loads).
    Mem,
    /// Ordering against a control-transfer instruction (everything stays
    /// on its side of the terminator).
    Control,
}

/// One dependence edge `from → to` (instruction indices within the block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer index.
    pub from: usize,
    /// Consumer index.
    pub to: usize,
    /// Edge kind.
    pub kind: DepKind,
}

/// The dependence DAG of one basic block.
#[derive(Clone, Debug)]
pub struct DepDag {
    n: usize,
    /// Outgoing edges per instruction.
    succs: Vec<Vec<DepEdge>>,
    /// Number of incoming edges per instruction.
    in_degree: Vec<usize>,
}

impl DepDag {
    /// Builds the dependence DAG of `block`.
    ///
    /// Conservative memory model: stores order against all other memory
    /// operations; loads only order against stores. Control instructions
    /// order against everything before them.
    pub fn build(block: &BasicBlock) -> Self {
        let insts = block.insts();
        let n = insts.len();
        let mut succs = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        let add = |succs: &mut Vec<Vec<DepEdge>>, in_degree: &mut Vec<usize>, e: DepEdge| {
            if succs[e.from].iter().any(|x| x.to == e.to) {
                return; // keep one edge per pair (first kind wins)
            }
            succs[e.from].push(e);
            in_degree[e.to] += 1;
        };
        for j in 0..n {
            let b = &insts[j];
            for (i, a) in insts.iter().enumerate().take(j) {
                if let Some(kind) = dependence(a, b) {
                    add(
                        &mut succs,
                        &mut in_degree,
                        DepEdge {
                            from: i,
                            to: j,
                            kind,
                        },
                    );
                }
            }
        }
        DepDag {
            n,
            succs,
            in_degree,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Outgoing edges of instruction `i`.
    pub fn succs(&self, i: usize) -> &[DepEdge] {
        &self.succs[i]
    }

    /// Incoming-edge count of instruction `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_degree[i]
    }

    /// A topological order (instruction indices); always exists since
    /// edges point forward in program order.
    pub fn topo_order(&self) -> Vec<usize> {
        (0..self.n).collect()
    }

    /// Critical-path length (in latency) ending at each instruction, used
    /// as the list-scheduling priority.
    pub fn critical_path_from(&self, latencies: &[u32]) -> Vec<u32> {
        assert_eq!(latencies.len(), self.n);
        // Height = longest latency path from this instruction to any leaf.
        let mut height = vec![0u32; self.n];
        for i in (0..self.n).rev() {
            let mut h = 0;
            for e in &self.succs[i] {
                h = h.max(latencies[i] + height[e.to]);
            }
            height[i] = h.max(latencies[i]);
        }
        height
    }
}

/// Classifies the dependence of later instruction `b` on earlier `a`.
fn dependence(a: &Inst, b: &Inst) -> Option<DepKind> {
    // Control ordering: nothing moves across a terminator (they are last
    // anyway) and terminators depend on everything for scheduling purposes
    // only through their register inputs; we pin them with Control edges.
    if a.is_control() || b.is_control() {
        // Terminators are pinned: every earlier instruction must stay
        // before the block's control transfer (schedulers may not move
        // work past the exit), with a true-dependence label when the
        // terminator reads the value.
        if b.is_control() {
            if let Some(d) = a.dst() {
                if b.srcs().contains(&d) {
                    return Some(DepKind::Raw);
                }
            }
            return Some(DepKind::Control);
        }
        // a is control but not last — cannot happen in a validated block.
        return Some(DepKind::Control);
    }
    // Register dependences.
    if let Some(d) = a.dst() {
        if b.srcs().contains(&d) {
            return Some(DepKind::Raw);
        }
        if b.dst() == Some(d) {
            return Some(DepKind::Waw);
        }
    }
    if let Some(d) = b.dst() {
        if a.srcs().contains(&d) {
            return Some(DepKind::War);
        }
    }
    // Memory ordering.
    let a_store = matches!(a, Inst::Store { .. });
    let b_store = matches!(b, Inst::Store { .. });
    if (a.is_mem() && b_store) || (a_store && b.is_mem()) {
        return Some(DepKind::Mem);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{AluOp, BasicBlock, CondKind, Operand, Reg};

    fn block(insts: Vec<Inst>) -> BasicBlock {
        let mut b = BasicBlock::new("t");
        *b.insts_mut() = insts;
        b
    }

    #[test]
    fn raw_dependence() {
        let b = block(vec![
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(2)),
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(3)),
        ]);
        let dag = DepDag::build(&b);
        assert_eq!(
            dag.succs(0),
            &[DepEdge {
                from: 0,
                to: 1,
                kind: DepKind::Raw
            }]
        );
        assert_eq!(dag.in_degree(1), 1);
    }

    #[test]
    fn war_and_waw() {
        let b = block(vec![
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(0)),
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(0), Operand::Imm(0)), // WAR on r1
            Inst::alu(AluOp::Add, Reg(1), Operand::Imm(1), Operand::Imm(1)), // WAW on r1
        ]);
        let dag = DepDag::build(&b);
        assert_eq!(dag.succs(0)[0].kind, DepKind::War);
        assert_eq!(dag.succs(1)[0].kind, DepKind::Waw);
    }

    #[test]
    fn loads_reorder_but_stores_do_not() {
        let b = block(vec![
            Inst::load(Reg(1), Reg(10), 0),
            Inst::load(Reg(2), Reg(10), 8),
            Inst::store(Reg(3), Reg(10), 16),
        ]);
        let dag = DepDag::build(&b);
        // load↔load: no edge.
        assert!(dag.succs(0).iter().all(|e| e.to != 1));
        // load→store and load→store: Mem edges.
        assert!(dag
            .succs(0)
            .iter()
            .any(|e| e.to == 2 && e.kind == DepKind::Mem));
        assert!(dag
            .succs(1)
            .iter()
            .any(|e| e.to == 2 && e.kind == DepKind::Mem));
    }

    #[test]
    fn terminator_pins_memory_and_condition() {
        let b = block(vec![
            Inst::store(Reg(1), Reg(2), 0),
            Inst::alu(AluOp::Add, Reg(3), Operand::Imm(0), Operand::Imm(0)),
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(3),
                target: vanguard_isa::BlockId(0),
            },
        ]);
        let dag = DepDag::build(&b);
        assert!(dag
            .succs(0)
            .iter()
            .any(|e| e.to == 2 && e.kind == DepKind::Control));
        assert!(dag
            .succs(1)
            .iter()
            .any(|e| e.to == 2 && e.kind == DepKind::Raw));
    }

    #[test]
    fn critical_path_prefers_long_chains() {
        // i0 -> i1 -> i2 (chain) and i3 independent.
        let b = block(vec![
            Inst::load(Reg(1), Reg(10), 0),
            Inst::alu(AluOp::Add, Reg(2), Operand::Reg(Reg(1)), Operand::Imm(1)),
            Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(2)), Operand::Imm(1)),
            Inst::alu(AluOp::Add, Reg(4), Operand::Imm(0), Operand::Imm(0)),
        ]);
        let dag = DepDag::build(&b);
        let lat: Vec<u32> = b.insts().iter().map(|i| i.base_latency()).collect();
        let h = dag.critical_path_from(&lat);
        assert_eq!(h[0], 4 + 1 + 1);
        assert_eq!(h[3], 1);
        assert!(h[0] > h[1] && h[1] > h[2]);
    }

    #[test]
    fn empty_block_is_empty_dag() {
        let dag = DepDag::build(&block(vec![]));
        assert!(dag.is_empty());
        assert!(dag.topo_order().is_empty());
    }
}

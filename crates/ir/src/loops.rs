//! Natural-loop detection.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use std::collections::VecDeque;
use vanguard_isa::{BlockId, Program};

/// A natural loop: a back edge `latch → header` where the header
/// dominates the latch, plus every block that can reach the latch without
/// passing through the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the back edge's target).
    pub header: BlockId,
    /// The latch (the back edge's source).
    pub latch: BlockId,
    /// All blocks in the loop body, including header and latch, sorted.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// Membership test.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// All natural loops of a program plus per-block nesting depth.
///
/// The paper leaves backward (loop) branches to "well-known loop
/// transformations" (footnote 1); this analysis gives the semantic
/// definition of *loop branch* — a branch whose taken edge is a back edge —
/// complementing the layout-based [`Cfg::branch_direction`] test, and
/// provides nesting depth for profile-independent hotness heuristics.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
}

impl LoopForest {
    /// Finds the natural loops of `program`.
    pub fn build(program: &Program, cfg: &Cfg, dom: &DomTree) -> Self {
        let n = program.num_blocks();
        let mut loops = Vec::new();
        for (bid, _) in program.iter() {
            if !cfg.is_reachable(bid) {
                continue;
            }
            for &succ in cfg.succs(bid) {
                // Back edge: target dominates source.
                if dom.dominates(succ, bid) {
                    loops.push(find_body(cfg, succ, bid));
                }
            }
        }
        let mut depth = vec![0u32; n];
        for l in &loops {
            for &b in &l.body {
                depth[b.index()] += 1;
            }
        }
        // Merge loops sharing a header? Keep them distinct (one per back
        // edge) but sort deterministically for stable output.
        loops.sort_by_key(|l| (l.header, l.latch));
        LoopForest { loops, depth }
    }

    /// The detected loops, sorted by (header, latch).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loop-nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Whether the edge `from → to` is a back edge of some loop.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops.iter().any(|l| l.latch == from && l.header == to)
    }
}

fn find_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> NaturalLoop {
    // Standard worklist: walk predecessors from the latch, stopping at the
    // header.
    let mut body = vec![header];
    let mut work = VecDeque::new();
    if latch != header {
        body.push(latch);
        work.push_back(latch);
    }
    while let Some(b) = work.pop_front() {
        for &p in cfg.preds(b) {
            if !body.contains(&p) {
                body.push(p);
                work.push_back(p);
            }
        }
    }
    body.sort();
    body.dedup();
    NaturalLoop {
        header,
        latch,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::parse_program;

    fn analyse(text: &str) -> (vanguard_isa::Program, Cfg, DomTree) {
        let p = parse_program(text).expect("parses");
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&p, &cfg);
        (p, cfg, dom)
    }

    #[test]
    fn simple_loop_detected() {
        let (p, cfg, dom) = analyse(
            r"
bb0 <entry>:
    nop
    ; fallthrough -> bb1
bb1 <body>:
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb2
bb2 <exit>:
    halt
",
        );
        let forest = LoopForest::build(&p, &cfg, &dom);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(1));
        assert_eq!(l.body, vec![BlockId(1)]);
        assert!(forest.is_back_edge(BlockId(1), BlockId(1)));
        assert_eq!(forest.depth(BlockId(1)), 1);
        assert_eq!(forest.depth(BlockId(0)), 0);
    }

    #[test]
    fn loop_with_internal_hammock() {
        let (p, cfg, dom) = analyse(
            r"
bb0 <entry>:
    nop
    ; fallthrough -> bb1
bb1 <head>:
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    jmp bb4
bb3 <taken>:
    ; fallthrough -> bb4
bb4 <latch>:
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    halt
",
        );
        let forest = LoopForest::build(&p, &cfg, &dom);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(4));
        assert_eq!(l.body, vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)]);
        assert!(!l.contains(BlockId(0)));
        assert!(!l.contains(BlockId(5)));
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let (p, cfg, dom) = analyse(
            r"
bb0 <entry>:
    nop
    ; fallthrough -> bb1
bb1 <outer>:
    nop
    ; fallthrough -> bb2
bb2 <inner>:
    sub r1, r1, #1
    cmp.ne r3, r1, #0
    br.nz r3, bb2
    ; fallthrough -> bb3
bb3 <outer_latch>:
    sub r2, r2, #1
    cmp.ne r4, r2, #0
    br.nz r4, bb1
    ; fallthrough -> bb4
bb4 <exit>:
    halt
",
        );
        let forest = LoopForest::build(&p, &cfg, &dom);
        assert_eq!(forest.loops().len(), 2);
        assert_eq!(forest.depth(BlockId(2)), 2, "inner body nests twice");
        assert_eq!(forest.depth(BlockId(1)), 1);
        assert_eq!(forest.depth(BlockId(3)), 1);
        assert_eq!(forest.depth(BlockId(4)), 0);
    }

    #[test]
    fn acyclic_program_has_no_loops() {
        let (p, cfg, dom) = analyse(
            r"
bb0 <a>:
    cmp.ne r2, r1, #0
    br.nz r2, bb2
    ; fallthrough -> bb1
bb1 <b>:
    halt
bb2 <c>:
    halt
",
        );
        let forest = LoopForest::build(&p, &cfg, &dom);
        assert!(forest.loops().is_empty());
        assert!(!forest.is_back_edge(BlockId(0), BlockId(2)));
    }
}

//! # vanguard-ir
//!
//! Compiler analyses over [`vanguard_isa::Program`]s: the infrastructure
//! the Decomposed Branch Transformation and the in-order list scheduler
//! are built on.
//!
//! The hidden ISA doubles as the compiler's machine-level IR (exactly the
//! situation in a DBT translator, where the "compiler" is the translation
//! layer emitting the hidden ISA directly), so the analyses here operate on
//! ISA programs:
//!
//! * [`Cfg`] — predecessor/successor maps, reverse postorder, and
//!   forward/backward branch classification (the paper transforms only
//!   *forward* branches; backward/loop branches are left to classic loop
//!   scheduling).
//! * [`DomTree`] — dominators, for hoisting legality.
//! * [`Liveness`] — per-block live-in/live-out sets, for clobber-free
//!   speculative code motion and temporary-register allocation.
//! * [`DepDag`] — intra-block dependence DAGs (RAW/WAR/WAW/memory/control)
//!   consumed by the list scheduler.
//! * [`Profile`] — per-branch-site execution statistics (bias and
//!   predictability), the input to the paper's candidate-selection
//!   heuristic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfg;
mod dag;
mod dom;
mod liveness;
mod loops;
mod postdom;
mod profile;
mod regset;

pub use cfg::{BranchDirection, Cfg};
pub use dag::{DepDag, DepKind};
pub use dom::DomTree;
pub use liveness::Liveness;
pub use loops::{LoopForest, NaturalLoop};
pub use postdom::PostDomTree;
pub use profile::{BranchSiteStats, Profile};
pub use regset::RegSet;

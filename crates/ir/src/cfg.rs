//! Control-flow graph over an ISA program.

use vanguard_isa::{BlockId, Inst, Program};

/// Static direction of a conditional branch, judged from the code layout
/// (the paper transforms forward branches only; backward branches are loop
/// branches, "ably handled by well-known loop transformations").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchDirection {
    /// Target is laid out after the branch.
    Forward,
    /// Target is laid out at or before the branch.
    Backward,
}

/// Predecessor/successor maps and traversal orders for a program.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    /// Position of each block in the layout order.
    layout_pos: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Self {
        let n = program.num_blocks();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (bid, block) in program.iter() {
            let s = block.successors();
            for &t in &s {
                preds[t.index()].push(bid);
            }
            succs[bid.index()] = s;
        }
        // Reverse postorder from the entry.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(program.entry(), 0)];
        visited[program.entry().index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let next = succs[b.index()][*i];
                *i += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut layout_pos = vec![usize::MAX; n];
        for (pos, &b) in program.layout_order().iter().enumerate() {
            layout_pos[b.index()] = pos;
        }
        Cfg {
            preds,
            succs,
            rpo: post,
            layout_pos,
        }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Reverse postorder over reachable blocks.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// Classifies the conditional terminator of `b` (branch or predict) as
    /// forward or backward by layout position. Returns `None` when `b`'s
    /// terminator is not a conditional transfer with a target.
    pub fn branch_direction(&self, program: &Program, b: BlockId) -> Option<BranchDirection> {
        let term = program.block(b).terminator()?;
        let target = match term {
            Inst::Branch { target, .. } | Inst::Predict { target } => *target,
            _ => return None,
        };
        let here = self.layout_pos[b.index()];
        let there = self.layout_pos[target.index()];
        Some(if there > here {
            BranchDirection::Forward
        } else {
            BranchDirection::Backward
        })
    }

    /// Conditional-branch sites: blocks whose terminator is `Branch`.
    pub fn branch_blocks<'a>(&'a self, program: &'a Program) -> impl Iterator<Item = BlockId> + 'a {
        program.iter().filter_map(|(bid, b)| {
            matches!(b.terminator(), Some(Inst::Branch { .. })).then_some(bid)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{CmpKind, CondKind, Operand, ProgramBuilder, Reg};

    /// entry → {then, else} → join → (loop back to entry | exit)
    fn diamond_with_loop() -> (Program, [BlockId; 5]) {
        let mut b = ProgramBuilder::new();
        let entry = b.block("entry");
        let then_b = b.block("then");
        let else_b = b.block("else");
        let join = b.block("join");
        let exit = b.block("exit");
        b.push(
            entry,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: then_b,
            },
        );
        b.fallthrough(entry, else_b);
        b.push(then_b, Inst::Jump { target: join });
        b.push(else_b, Inst::Nop);
        b.fallthrough(else_b, join);
        b.push(
            join,
            Inst::Cmp {
                kind: CmpKind::Ne,
                dst: Reg(2),
                a: Reg(3),
                b: Operand::Imm(0),
            },
        );
        b.push(
            join,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: entry,
            },
        );
        b.fallthrough(join, exit);
        b.push(exit, Inst::Halt);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        (p, [entry, then_b, else_b, join, exit])
    }

    #[test]
    fn preds_and_succs() {
        let (p, [entry, then_b, else_b, join, exit]) = diamond_with_loop();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.succs(entry), &[then_b, else_b]);
        assert_eq!(cfg.succs(join), &[entry, exit]);
        let mut jp = cfg.preds(join).to_vec();
        jp.sort();
        assert_eq!(jp, vec![then_b, else_b]);
        assert_eq!(cfg.preds(entry), &[join]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (p, [entry, _, _, _, exit]) = diamond_with_loop();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.reverse_postorder()[0], entry);
        assert_eq!(cfg.reverse_postorder().len(), 5);
        assert!(cfg.is_reachable(exit));
    }

    #[test]
    fn unreachable_block_detected() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let dead = b.block("dead");
        b.push(e, Inst::Halt);
        b.push(dead, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(!cfg.is_reachable(dead));
    }

    #[test]
    fn forward_and_backward_classification() {
        let (p, [entry, _, _, join, _]) = diamond_with_loop();
        let cfg = Cfg::build(&p);
        assert_eq!(
            cfg.branch_direction(&p, entry),
            Some(BranchDirection::Forward)
        );
        assert_eq!(
            cfg.branch_direction(&p, join),
            Some(BranchDirection::Backward)
        );
    }

    #[test]
    fn branch_blocks_enumerates_conditionals() {
        let (p, [entry, _, _, join, _]) = diamond_with_loop();
        let cfg = Cfg::build(&p);
        let sites: Vec<_> = cfg.branch_blocks(&p).collect();
        assert_eq!(sites, vec![entry, join]);
    }

    #[test]
    fn predict_terminator_is_classified() {
        let mut b = ProgramBuilder::new();
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        b.push(e, Inst::Predict { target: t });
        b.fallthrough(e, f);
        b.push(t, Inst::Halt);
        b.push(f, Inst::Halt);
        b.set_entry(e);
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.branch_direction(&p, e), Some(BranchDirection::Forward));
    }
}

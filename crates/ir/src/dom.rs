//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use vanguard_isa::{BlockId, Program};

/// Immediate-dominator tree over the reachable blocks of a program.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator; entry maps to itself; unreachable
    /// blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators for `program` using its [`Cfg`].
    pub fn build(program: &Program, cfg: &Cfg) -> Self {
        let n = program.num_blocks();
        let rpo = cfg.reverse_postorder();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let entry = program.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        // Invariant behind the `expect`s: `intersect` is only invoked on
        // predecessors whose idom slot is already set (the caller skips
        // unprocessed preds), and CHK walks finger chains strictly
        // upward through processed nodes toward the entry, whose slot is
        // seeded above — so every dereferenced slot is `Some`.
        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = idom[a.index()].expect("finger chain stays within processed nodes");
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = idom[b.index()].expect("finger chain stays within processed nodes");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, entry }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            // Every reachable block's idom chain terminates at the entry
            // (checked reachable above), so the walk never hits `None`.
            cur = self.idom[cur.index()].expect("idom chain of a reachable block reaches entry");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanguard_isa::{CondKind, Inst, ProgramBuilder, Reg};

    /// entry → {a, b} → join → exit, with a nested branch inside `a`.
    fn nested() -> (vanguard_isa::Program, [BlockId; 7]) {
        let mut pb = ProgramBuilder::new();
        let entry = pb.block("entry");
        let a = pb.block("a");
        let a1 = pb.block("a1");
        let a2 = pb.block("a2");
        let b = pb.block("b");
        let join = pb.block("join");
        let exit = pb.block("exit");
        pb.push(
            entry,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: a,
            },
        );
        pb.fallthrough(entry, b);
        pb.push(
            a,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(2),
                target: a1,
            },
        );
        pb.fallthrough(a, a2);
        pb.push(a1, Inst::Jump { target: join });
        pb.push(a2, Inst::Jump { target: join });
        pb.push(b, Inst::Jump { target: join });
        pb.push(join, Inst::Nop);
        pb.fallthrough(join, exit);
        pb.push(exit, Inst::Halt);
        pb.set_entry(entry);
        let p = pb.finish().unwrap();
        (p, [entry, a, a1, a2, b, join, exit])
    }

    #[test]
    fn idoms_of_nested_diamonds() {
        let (p, [entry, a, a1, a2, b, join, exit]) = nested();
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&p, &cfg);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(a1), Some(a));
        assert_eq!(dom.idom(a2), Some(a));
        assert_eq!(dom.idom(b), Some(entry));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(exit), Some(join));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (p, [entry, a, a1, _, _, join, exit]) = nested();
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&p, &cfg);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(a, a1));
        assert!(!dom.dominates(a, join));
        assert!(dom.dominates(join, join));
        assert!(!dom.dominates(a1, a));
    }

    #[test]
    fn unreachable_blocks_are_dominated_by_nothing() {
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        let dead = pb.block("dead");
        pb.push(e, Inst::Halt);
        pb.push(dead, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&p, &cfg);
        assert!(!dom.dominates(e, dead));
        assert_eq!(dom.idom(dead), None);
    }

    #[test]
    fn loop_back_edges_converge() {
        // entry → body → body (self loop) → exit: idom(exit) = body.
        let mut pb = ProgramBuilder::new();
        let e = pb.block("entry");
        let body = pb.block("body");
        let exit = pb.block("exit");
        pb.push(e, Inst::Nop);
        pb.fallthrough(e, body);
        pb.push(
            body,
            Inst::Branch {
                cond: CondKind::Nz,
                src: Reg(1),
                target: body,
            },
        );
        pb.fallthrough(body, exit);
        pb.push(exit, Inst::Halt);
        pb.set_entry(e);
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p);
        let dom = DomTree::build(&p, &cfg);
        assert_eq!(dom.idom(body), Some(e));
        assert_eq!(dom.idom(exit), Some(body));
    }
}

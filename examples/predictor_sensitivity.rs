//! §5.3 of the paper: how the transformation's benefit scales with branch
//! predictor accuracy.
//!
//! "Since the benefit of our technique improves with increased branch
//! predictor accuracy, this conservative choice of branch predictors
//! pessimizes our results." We sweep the ladder from a bimodal table up
//! to a 64 KB ISL-TAGE on one hard-to-predict benchmark.
//!
//! ```text
//! cargo run --release --example predictor_sensitivity
//! ```

use vanguard_bench::{BenchScale, SuiteEngine};
use vanguard_bpred::ladder;
use vanguard_core::engine::SweepCell;
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn main() {
    // astar: one of the four benchmarks the paper singles out as
    // predictor-sensitive (astar, sjeng, gobmk, mcf).
    let spec = suite::spec2006_int()
        .into_iter()
        .find(|s| s.name == "astar")
        .expect("astar in the suite");
    // The whole ladder runs as one engine sweep: per-rung profiles and
    // compiled pairs are cached, and jobs execute on the worker pool.
    let mut eng = SuiteEngine::new(BenchScale::Quick);
    let bench = eng.bench_id(&spec);
    let cells: Vec<SweepCell> = ladder()
        .into_iter()
        .map(|rung| SweepCell {
            bench,
            machine: MachineConfig::four_wide(),
            predictor: rung,
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("runs cleanly");

    println!("{:<32} {:>10} {:>10}", "predictor", "miss-rate", "speedup");
    let mut prev: Option<(f64, f64)> = None;
    for (rung, out) in ladder().into_iter().zip(&outcomes) {
        let miss = 1.0
            - out
                .runs
                .iter()
                .map(|r| r.base.prediction_accuracy())
                .sum::<f64>()
                / out.runs.len() as f64;
        let spd = out.geomean_speedup_pct();
        print!("{:<32} {:>9.2}% {:>9.2}%", rung.label(), miss * 100.0, spd);
        if let Some((pm, ps)) = prev {
            if pm > miss && miss > 0.0 {
                // The paper's headline: ~0.3% extra speedup per 1% of
                // misprediction rate removed.
                print!(
                    "   ({:+.2}% speedup per -1% missrate)",
                    (spd - ps) / ((pm - miss) * 100.0)
                );
            }
        }
        println!();
        prev = Some((miss, spd));
    }
}

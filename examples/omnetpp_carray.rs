//! The paper's Figure 6 walk-through: `cArray::add(cObject*)` from
//! omnetpp, simplified exactly as the paper does, then decomposed.
//!
//! The code pattern: a bounds check (`count < size`) that is unbiased but
//! predictable; the taken path grows the array (loads + store), the
//! fall-through path inserts directly. The branch serialises the loads in
//! block A against the loads in B/C; the transformation overlaps them.
//!
//! ```text
//! cargo run --release --example omnetpp_carray
//! ```

use vanguard_bpred::Combined;
use vanguard_compiler::profile_program;
use vanguard_core::{decompose_branches, TransformOptions};
use vanguard_isa::{AluOp, CmpKind, CondKind, Inst, Memory, Operand, Program, ProgramBuilder, Reg};
use vanguard_sim::{MachineConfig, Simulator};

/// Builds the Figure 6(a) kernel: a loop calling the simplified
/// `cArray::add` body.
///
/// Registers: r1 = `this`, r2 = loop counter, r20 = scratch obj pointer.
/// `this` layout: [count, size, items_ptr, lastfull].
fn carray_add_kernel(iterations: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    let a = b.block("A");
    let grow = b.block("B_grow"); // count >= size: grow path (taken)
    let fast = b.block("C_fast"); // count < size: fast insert
    let join = b.block("join");
    let exit = b.block("exit");

    b.push(entry, Inst::mov(Reg(1), Operand::Imm(0x10000))); // this
    b.push(entry, Inst::mov(Reg(2), Operand::Imm(iterations)));
    b.push(entry, Inst::mov(Reg(20), Operand::Imm(0x40000))); // obj
    b.fallthrough(entry, a);

    // A: load this->count, this->size; branch if count >= size (grow).
    b.push(a, Inst::load(Reg(3), Reg(1), 0)); // count
    b.push(a, Inst::load(Reg(4), Reg(1), 8)); // size
    b.push(
        a,
        Inst::Cmp {
            kind: CmpKind::Ge,
            dst: Reg(5),
            a: Reg(3),
            b: Operand::Reg(Reg(4)),
        },
    );
    b.push(
        a,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(5),
            target: grow,
        },
    );
    b.fallthrough(a, fast);

    // C (fast path): items = this->items; items[count] = obj; count++.
    b.push(fast, Inst::load(Reg(6), Reg(1), 16)); // items ptr
    b.push(
        fast,
        Inst::alu(AluOp::Shl, Reg(7), Operand::Reg(Reg(3)), Operand::Imm(3)),
    );
    b.push(
        fast,
        Inst::alu(
            AluOp::Add,
            Reg(7),
            Operand::Reg(Reg(7)),
            Operand::Reg(Reg(6)),
        ),
    );
    b.push(fast, Inst::store(Reg(20), Reg(7), 0));
    b.push(
        fast,
        Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(1)),
    );
    b.push(fast, Inst::store(Reg(3), Reg(1), 0));
    b.push(fast, Inst::Jump { target: join });

    // B (grow path): load lastfull, recompute size, store both, then
    // insert — the loads here are what the paper overlaps with A's loads.
    b.push(grow, Inst::load(Reg(8), Reg(1), 24)); // lastfull
    b.push(grow, Inst::load(Reg(6), Reg(1), 16)); // items ptr
    b.push(
        grow,
        Inst::alu(
            AluOp::Add,
            Reg(9),
            Operand::Reg(Reg(8)),
            Operand::Reg(Reg(3)),
        ),
    );
    b.push(
        grow,
        Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(9)), Operand::Imm(2)),
    );
    b.push(grow, Inst::store(Reg(9), Reg(1), 8)); // size = lastfull+count+2
    b.push(
        grow,
        Inst::alu(AluOp::Shl, Reg(7), Operand::Reg(Reg(3)), Operand::Imm(3)),
    );
    b.push(
        grow,
        Inst::alu(
            AluOp::Add,
            Reg(7),
            Operand::Reg(Reg(7)),
            Operand::Reg(Reg(6)),
        ),
    );
    b.push(grow, Inst::store(Reg(20), Reg(7), 0));
    b.push(
        grow,
        Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(1)),
    );
    b.push(grow, Inst::store(Reg(3), Reg(1), 0));
    b.push(grow, Inst::Jump { target: join });

    // join: size oscillation keeps the branch unbiased-but-patterned, the
    // situation the paper profiles in omnetpp.
    b.push(
        join,
        Inst::alu(AluOp::Sub, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(1)),
    );
    b.push(
        join,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(10),
            a: Reg(2),
            b: Operand::Imm(0),
        },
    );
    b.push(
        join,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(10),
            target: a,
        },
    );
    b.fallthrough(join, exit);
    b.push(exit, Inst::Halt);
    b.set_entry(entry);
    b.finish().expect("kernel is valid")
}

fn initial_memory() -> Memory {
    let mut mem = Memory::new();
    // this: count=0, size=4, items=0x20000, lastfull=0
    mem.load_words(0x10000, &[0, 4, 0x20000, 0]);
    mem.map_region(0x20000, 128 * 1024); // items array
    mem.map_region(0x40000, 64);
    mem
}

fn main() {
    let iterations = 4000;
    let program = carray_add_kernel(iterations);

    println!("=== Figure 6(a): original cArray::add kernel ===");
    println!("{}", program.disassemble());

    // Profile (TRAIN) with the baseline predictor: the grow/fast branch is
    // unbiased (size grows by 16 after every 16 fast inserts … a periodic,
    // highly predictable pattern) — exactly the candidate population.
    let profile = profile_program(
        &program,
        initial_memory(),
        &[],
        Combined::ptlsim_default(),
        10_000_000,
    )
    .expect("profiling runs");
    for (block, stats) in profile.iter() {
        println!(
            "site {block}: bias {:.2}, predictability {:.2}, executed {}",
            stats.bias(),
            stats.predictability(),
            stats.executed
        );
    }

    let mut transformed = program.clone();
    let report = decompose_branches(&mut transformed, &profile, &TransformOptions::default());
    println!("\n=== Figure 6(b)/(c): decomposed kernel ===");
    println!("{}", transformed.disassemble());
    println!(
        "converted {} site(s); code size {} -> {} bytes (+{:.1}%)",
        report.converted.len(),
        report.code_bytes_before,
        report.code_bytes_after,
        report.piscs()
    );

    // Simulate both on the 4-wide machine.
    let run = |p: &Program| {
        let sim = Simulator::new(
            p,
            initial_memory(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        sim.run().expect("simulates cleanly").stats
    };
    let base = run(&program);
    let exp = run(&transformed);
    println!(
        "\nbaseline:   {} cycles (IPC {:.3})",
        base.cycles,
        base.ipc()
    );
    println!("decomposed: {} cycles (IPC {:.3})", exp.cycles, exp.ipc());
    println!(
        "speedup: {:.2}%",
        (base.cycles as f64 / exp.cycles as f64 - 1.0) * 100.0
    );
}

//! Figure 1 of the paper, run as an experiment: which transformation
//! helps which kind of branch?
//!
//! | | highly biased | low biased |
//! |---|---|---|
//! | **predictable** | superblocks | **decomposed branches (this paper)** |
//! | **unpredictable** | (rare) | predication |
//!
//! One hammock kernel (written in the crate's assembly syntax), three
//! branch populations, four compilations: baseline, superblock formation,
//! cmov if-conversion, and the Decomposed Branch Transformation.
//!
//! ```text
//! cargo run --release --example taxonomy
//! ```

use vanguard_bpred::Combined;
use vanguard_compiler::{
    compact_program, form_superblocks, if_convert, layout_program, merge_straightline,
    profile_program, schedule_program, SchedConfig,
};
use vanguard_core::{decompose_branches, SelectOptions, TransformOptions};
use vanguard_isa::{parse_program, Memory, Program, Reg};
use vanguard_sim::{MachineConfig, Simulator};

/// The hammock: a data-dependent condition chain feeding a branch whose
/// two sides are pure ALU work, converging on a join that loads, combines,
/// and stores. If-convertible, superblock-able, and decomposable.
const KERNEL: &str = r"
.entry bb0
bb0 <entry>:
    mov r3, #1048576
    mov r10, #2097152
    mov r11, #3145728
    mov r13, #0
    ; fallthrough -> bb1
bb1 <head>:
    ld r4, [r3+0]
    add r4, r4, #0
    cmp.ne r5, r4, #0
    br.nz r5, bb3
    ; fallthrough -> bb2
bb2 <fall>:
    mul r6, r13, #3
    add r6, r6, #1
    xor r6, r6, #21
    jmp bb4
bb3 <taken>:
    mul r6, r13, #5
    sub r6, r6, #2
    or r6, r6, #9
    ; fallthrough -> bb4
bb4 <join>:
    ld r7, [r10+0]
    add r8, r7, r6
    st [r11+0], r8
    add r13, r13, #8
    and r13, r13, #4095
    add r3, r13, #1048576
    add r10, r13, #2097152
    add r11, r13, #3145728
    sub r1, r1, #1
    cmp.ne r2, r1, #0
    br.nz r2, bb1
    ; fallthrough -> bb5
bb5 <exit>:
    halt
";

const ITERS: u64 = 2000;

fn memory_for(pattern: impl Fn(usize) -> bool) -> Memory {
    // 4 KB wrapped regions: L1-resident after warmup, so the comparison
    // isolates branch handling rather than cold-miss streaming.
    let mut mem = Memory::new();
    let conds: Vec<u64> = (0..512).map(|i| u64::from(pattern(i))).collect();
    mem.load_words(0x10_0000, &conds);
    let data: Vec<u64> = (0..512).map(|i| i * 13 % 97).collect();
    mem.load_words(0x20_0000, &data);
    mem.map_region(0x30_0000, 4096 + 64);
    mem
}

fn cycles(p: &Program, mem: Memory) -> u64 {
    let mut sim = Simulator::new(
        p,
        mem,
        MachineConfig::four_wide(),
        Box::new(Combined::ptlsim_default()),
    );
    sim.set_reg(Reg(1), ITERS);
    sim.run().expect("simulates").stats.cycles
}

type Pattern = Box<dyn Fn(usize) -> bool>;

fn main() {
    let program = parse_program(KERNEL).expect("kernel parses");
    let sched = SchedConfig::for_width(4);

    // Direction streams for the three quadrants (seeded, deterministic).
    let mut x = 0x2545f4914f6cdd1du64;
    let mut rand_bit = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x & 1 == 1
    };
    let random: Vec<bool> = (0..ITERS as usize).map(|_| rand_bit()).collect();
    let quadrants: [(&str, Pattern); 3] = [
        (
            "predictable, low-biased  (this paper)",
            // 60/40 with a long learnable phase structure.
            Box::new(|i: usize| matches!(i % 8, 0 | 1 | 3 | 6 | 7)) as Pattern,
        ),
        (
            "unpredictable, low-biased (predication)",
            Box::new(move |i| random[i]),
        ),
        (
            "predictable, highly-biased (superblocks)",
            Box::new(|i: usize| !i.is_multiple_of(16)),
        ),
    ];

    println!(
        "{:<42} {:>10} {:>12} {:>12} {:>12}",
        "branch population", "baseline", "superblock", "if-convert", "decomposed"
    );
    for (label, pattern) in quadrants {
        let profile = {
            let mut prof_mem = memory_for(&pattern);
            let _ = &mut prof_mem;
            profile_program(
                &program,
                prof_mem,
                &[(Reg(1), ITERS)],
                Combined::ptlsim_default(),
                50_000_000,
            )
            .expect("profiling")
        };

        let compile = |f: &dyn Fn(&mut Program)| -> Program {
            let mut p = program.clone();
            f(&mut p);
            layout_program(&mut p, &profile);
            schedule_program(&mut p, &sched);
            compact_program(&p)
        };
        let base = compile(&|_| {});
        let sb = compile(&|p| {
            form_superblocks(p, &profile, 0.85, 32);
            merge_straightline(p);
        });
        let ic = compile(&|p| {
            if_convert(p, 8);
        });
        let dec = compile(&|p| {
            decompose_branches(
                p,
                &profile,
                &TransformOptions {
                    select: SelectOptions {
                        threshold: -1.0, // force conversion to expose the contrast
                        ..SelectOptions::default()
                    },
                    ..TransformOptions::default()
                },
            );
        });

        let b = cycles(&base, memory_for(&pattern));
        let pct = |p: &Program| (b as f64 / cycles(p, memory_for(&pattern)) as f64 - 1.0) * 100.0;
        println!(
            "{:<42} {:>10} {:>11.2}% {:>11.2}% {:>11.2}%",
            label,
            b,
            pct(&sb),
            pct(&ic),
            pct(&dec),
        );
    }
    println!(
        "\nEach cell: % speedup over the baseline (4-wide). Decomposition is\n\
         the only transformation that wins on the predictable-but-unbiased\n\
         population — the paper's quadrant; if-conversion pays off where\n\
         prediction fails, and superblocks need a dominant path."
    );
}

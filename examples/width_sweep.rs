//! Sweep the three Table 1 machine widths on a couple of benchmarks.
//!
//! The paper observes that "the 4-wide configuration tends to benefit the
//! most: the transformation can balance the 4-wide's functional-unit
//! utilization to a greater degree than the narrow 2-wide, while we can
//! rarely fully utilize the 8-wide."
//!
//! ```text
//! cargo run --release --example width_sweep
//! ```

use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_core::Experiment;
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn main() {
    let names = ["h264ref", "omnetpp", "wrf"];
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>9}",
        "bench", "width", "base cyc", "exp cyc", "speedup"
    );
    for name in names {
        let spec = suite::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known benchmark");
        let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());
        for machine in MachineConfig::all_widths() {
            let out = Experiment::new(machine).run(&input).expect("runs cleanly");
            let r = &out.runs[0];
            println!(
                "{:<10} {:>7} {:>12} {:>12} {:>8.2}%",
                name,
                machine.width,
                r.base.cycles,
                r.exp.cycles,
                out.geomean_speedup_pct()
            );
        }
    }
}

//! Sweep the three Table 1 machine widths on a couple of benchmarks.
//!
//! The paper observes that "the 4-wide configuration tends to benefit the
//! most: the transformation can balance the 4-wide's functional-unit
//! utilization to a greater degree than the narrow 2-wide, while we can
//! rarely fully utilize the 8-wide."
//!
//! ```text
//! cargo run --release --example width_sweep
//! ```

use vanguard_bench::{BenchScale, SuiteEngine};
use vanguard_core::engine::{PredictorKind, SweepCell};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn main() {
    let names = ["h264ref", "omnetpp", "wrf"];
    // One engine for the whole sweep: each benchmark is profiled once,
    // and all 9 (bench × width) cells run on the worker pool.
    let mut eng = SuiteEngine::new(BenchScale::Quick);
    let cells: Vec<SweepCell> = names
        .iter()
        .flat_map(|name| {
            let spec = suite::all_benchmarks()
                .into_iter()
                .find(|s| s.name == *name)
                .expect("known benchmark");
            let bench = eng.bench_id(&spec);
            MachineConfig::all_widths()
                .into_iter()
                .map(move |machine| SweepCell {
                    bench,
                    machine,
                    predictor: PredictorKind::Combined24KB,
                })
        })
        .collect();
    let outcomes = eng.run_cells(&cells).expect("runs cleanly");

    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>9}",
        "bench", "width", "base cyc", "exp cyc", "speedup"
    );
    for (cell, out) in cells.iter().zip(&outcomes) {
        let r = &out.runs[0];
        println!(
            "{:<10} {:>7} {:>12} {:>12} {:>8.2}%",
            out.name,
            cell.machine.width,
            r.base.cycles,
            r.exp.cycles,
            out.geomean_speedup_pct()
        );
    }
}

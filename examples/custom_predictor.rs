//! Extending the library: plug a user-defined branch predictor into the
//! pipeline and the experiment facade.
//!
//! The `DirectionPredictor` trait decouples prediction from training (the
//! contract the Decomposed Branch Buffer needs), so any predictor that can
//! snapshot its update metadata works — here, a tiny perceptron-style
//! predictor as the worked example.
//!
//! ```text
//! cargo run --release --example custom_predictor
//! ```

use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_bpred::{DirectionPredictor, PredMeta};
use vanguard_core::Experiment;
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

/// A small global-history perceptron predictor (Jiménez & Lin, HPCA 2001).
///
/// Weights are selected by PC; the dot product of weights with the last
/// `HIST` outcomes (±1) decides the direction. Training bumps weights when
/// the prediction was wrong or the margin was small.
#[derive(Debug)]
struct Perceptron {
    /// `weights[row][j]`; row selected by PC hash; `j = 0` is the bias.
    weights: Vec<[i16; Perceptron::HIST + 1]>,
    history: u64,
}

impl Perceptron {
    const HIST: usize = 24;
    const THRESHOLD: i32 = 38; // ≈ 1.93·HIST + 14, the classic setting

    fn new(rows: usize) -> Self {
        Perceptron {
            weights: vec![[0; Self::HIST + 1]; rows],
            history: 0,
        }
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2).wrapping_mul(0x9e3779b1) as usize) % self.weights.len()
    }

    fn dot(&self, row: usize, hist: u64) -> i32 {
        let w = &self.weights[row];
        let mut y = i32::from(w[0]);
        for j in 0..Self::HIST {
            let bit = (hist >> j) & 1 == 1;
            y += if bit {
                i32::from(w[j + 1])
            } else {
                -i32::from(w[j + 1])
            };
        }
        y
    }
}

impl DirectionPredictor for Perceptron {
    fn predict(&mut self, pc: u64) -> PredMeta {
        let row = self.row(pc);
        let y = self.dot(row, self.history);
        let taken = y >= 0;
        let mut meta = PredMeta::taken_only(taken);
        meta.words[0] = row as u32;
        meta.words[1] = y.unsigned_abs();
        meta.hist[0] = self.history;
        self.history = (self.history << 1) | taken as u64;
        meta
    }

    fn update(&mut self, _pc: u64, meta: &PredMeta, taken: bool) {
        let row = meta.words[0] as usize;
        let margin = meta.words[1] as i32;
        let hist = meta.hist[0];
        if meta.taken != taken || margin < Self::THRESHOLD {
            let w = &mut self.weights[row];
            let t = if taken { 1i16 } else { -1 };
            w[0] = (w[0] + t).clamp(-128, 127);
            for j in 0..Self::HIST {
                let bit = (hist >> j) & 1 == 1;
                let x = if bit { 1i16 } else { -1 };
                w[j + 1] = (w[j + 1] + t * x).clamp(-128, 127);
            }
        }
        if meta.taken != taken {
            self.history = (meta.hist[0] << 1) | taken as u64;
        }
    }

    fn repair_history(&mut self, meta: &PredMeta, taken: bool) {
        self.history = (meta.hist[0] << 1) | taken as u64;
    }

    fn name(&self) -> &'static str {
        "perceptron-24h"
    }

    fn storage_bits(&self) -> usize {
        self.weights.len() * (Self::HIST + 1) * 8 + Self::HIST
    }

    fn reset(&mut self) {
        for w in &mut self.weights {
            *w = [0; Self::HIST + 1];
        }
        self.history = 0;
    }
}

fn main() {
    let spec = suite::spec2006_int()
        .into_iter()
        .find(|s| s.name == "sjeng")
        .expect("sjeng");
    let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());

    // The facade only knows LadderRung, so drive the pieces directly:
    // profile with the custom predictor, compile, simulate with it too.
    let experiment = Experiment::new(MachineConfig::four_wide());
    let profile = experiment.profile(&input).expect("profiling");
    let (baseline, transformed, report) = experiment.compile_pair(&input.program, &profile);

    let simulate = |program: &vanguard_isa::Program| {
        let mut sim = vanguard_sim::Simulator::new(
            program,
            input.refs[0].memory.clone(),
            MachineConfig::four_wide(),
            Box::new(Perceptron::new(512)),
        );
        for &(r, v) in &input.refs[0].init_regs {
            sim.set_reg(r, v);
        }
        sim.run().expect("simulates").stats
    };
    let base = simulate(&baseline);
    let exp = simulate(&transformed);

    println!(
        "predictor: perceptron-24h ({} bits)",
        Perceptron::new(512).storage_bits()
    );
    println!("converted sites: {}", report.converted.len());
    println!(
        "baseline:    {} cycles (accuracy {:.1}%)",
        base.cycles,
        base.prediction_accuracy() * 100.0
    );
    println!(
        "transformed: {} cycles (accuracy {:.1}%)",
        exp.cycles,
        exp.prediction_accuracy() * 100.0
    );
    println!(
        "speedup: {:.2}%",
        (base.cycles as f64 / exp.cycles as f64 - 1.0) * 100.0
    );
}

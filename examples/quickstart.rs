//! Quickstart: decompose a predictable-but-unbiased branch and measure the
//! speedup on the paper's 4-wide in-order machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vanguard_bench::to_experiment_input;
use vanguard_core::Experiment;
use vanguard_sim::MachineConfig;
use vanguard_workloads::{BenchmarkSpec, OutcomeModel, SiteSpec, Suite};

fn main() {
    // A small custom workload: one forward branch with 60/40 bias but 94%
    // predictability (the population the paper targets), plus one
    // unpredictable branch that must be left alone.
    let spec = BenchmarkSpec {
        name: "quickstart".into(),
        suite: Suite::Int2006,
        sites: vec![
            SiteSpec {
                model: OutcomeModel::markov(0.60, 0.94),
            },
            SiteSpec {
                model: OutcomeModel::Random { taken_prob: 0.5 },
            },
        ],
        loads_per_block: 3,
        chase_loads: 1,
        hoistable_alu: 2,
        tail_alu: 1,
        fp_ops: 0,
        data_footprint: 32 * 1024,
        cond_depends_on_data: true,
        succ_depends_on_cond: false,
        iterations: 3000,
        train_iterations: 1500,
        ref_inputs: 1,
        bias_jitter: 0.0,
        use_calls: false,
        seed: 7,
    };

    let input = to_experiment_input(spec.build());
    let experiment = Experiment::new(MachineConfig::four_wide());
    let out = experiment.run(&input).expect("workload runs cleanly");

    println!("benchmark: {}", out.name);
    println!(
        "candidates converted: {} (of {} forward branches; {} skipped)",
        out.report.converted.len(),
        out.report.forward_branches,
        out.report.skipped.len()
    );
    for site in &out.report.converted {
        println!(
            "  {}: slice pushed down = {} insts, hoisted = {}/{} (taken/fall), executions = {}",
            site.block,
            site.slice_insts,
            site.hoisted_taken,
            site.hoisted_fallthrough,
            site.executed
        );
    }
    let run = &out.runs[0];
    println!(
        "baseline:     {:>9} cycles, IPC {:.3}, MPPKI {:.1}",
        run.base.cycles,
        run.base.ipc(),
        run.base.mppki()
    );
    println!(
        "decomposed:   {:>9} cycles, IPC {:.3}, MPPKI {:.1}",
        run.exp.cycles,
        run.exp.ipc(),
        run.exp.mppki()
    );
    println!("speedup:      {:.2}%", out.geomean_speedup_pct());
    println!("code size:    +{:.1}% (PISCS)", out.report.piscs());
    println!(
        "issued insts: +{:.2}% (wrong-path + duplication cost, Figure 14)",
        out.issued_increase_pct()
    );
    assert!(
        out.geomean_speedup_pct() > 0.0,
        "the predictable-unbiased branch should speed up"
    );
}

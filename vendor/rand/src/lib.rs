//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors the small API subset it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_bool` / `gen_range` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. The stream
//! differs from upstream `rand`'s ChaCha12-based `StdRng`, so anything
//! calibrated against exact upstream streams needs re-calibration; all
//! statistical properties the workloads rely on (uniformity,
//! independence, determinism per seed) hold.

#![warn(missing_docs)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // workloads only need uniformity, not exact unbiasedness
                // at astronomical spans.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, exactly like upstream's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniformly random value (only `u64`/`u32`/`bool` via [`Random`]).
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Random {
    /// A uniformly random value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator API subset this workspace's
//! property tests use — [`Strategy`](strategy::Strategy), `prop_map`, `prop_oneof!`,
//! [`Just`](strategy::Just), `any::<T>()`, ranges-as-strategies, tuple
//! strategies, [`collection::vec`], the `proptest!` macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! runs are reproducible byte-for-byte in CI with no regression files),
//! and failing inputs are *not* shrunk — the failure message reports the
//! case number, which replays deterministically.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner;

pub mod collection;

pub mod arbitrary;

pub use arbitrary::any;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies producing one value
/// type. `prop_oneof![s1, s2]` picks uniformly; `prop_oneof![3 => s1,
/// 1 => s2]` picks 3:1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands the function items of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

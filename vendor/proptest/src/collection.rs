//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A size specification: a fixed length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values from `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::for_case(3);
        let fixed = vec(0u8..9, 64);
        assert_eq!(fixed.generate(&mut rng).len(), 64);
        let ranged = vec(0u8..9, 1..5);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 9));
        }
    }
}

//! Test-runner plumbing: configuration, per-case RNG, failure type.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (raised by `prop_assert!`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-case generator handed to strategies.
///
/// Case `n` of every property always sees the same stream, so failures
/// replay exactly; there is no persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    /// The underlying generator (strategies sample from it directly).
    pub rng: rand::rngs::StdRng,
}

impl TestRng {
    /// The generator for case number `case`.
    pub fn for_case(case: u32) -> Self {
        use rand::SeedableRng as _;
        // Golden-ratio stride decorrelates neighbouring cases.
        let seed = 0x005e_ed0f_9209_7e57_u64 ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

/// Minimal runner for driving strategies outside `proptest!` (upstream
/// compatibility surface; rarely used directly).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` over `cases` generated inputs from `strategy`.
    ///
    /// # Errors
    ///
    /// Returns the first failing case's error.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestCaseError>
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::for_case(case);
            test(strategy.generate(&mut rng))?;
        }
        Ok(())
    }
}

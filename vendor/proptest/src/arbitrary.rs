//! `any::<T>()`: canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy producing uniformly random values of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen::<u64>() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::for_case(0);
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80, "trues {trues}");
    }
}

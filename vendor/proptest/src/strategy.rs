//! Strategies: deterministic value generators composable with
//! `prop_map`, tuples, ranges, and `prop_oneof!`.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A generator of test values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then builds and samples a second strategy
    /// from the value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (resampling; panics after
    /// 1000 consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::sync::Arc::new(self)
    }
}

/// A type-erased strategy (cheaply clonable, like upstream's).
pub type BoxedStrategy<V> = std::sync::Arc<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    std::sync::Arc::new(s)
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights covered the sampled point")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rng.rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Shift down one to keep the span representable.
                    rng.rng.gen_range(lo - 1..hi).wrapping_add(1)
                } else {
                    rng.rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let s = (1u8..10).prop_map(|x| x * 2);
        let mut rng = TestRng::for_case(0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let s = crate::prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = TestRng::for_case(1);
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 820 && ones < 980, "ones {ones}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = ((0u8..4), Just("x"), (0i64..3));
        let mut rng = TestRng::for_case(2);
        let (a, b, c) = s.generate(&mut rng);
        assert!(a < 4);
        assert_eq!(b, "x");
        assert!((0..3).contains(&c));
    }
}

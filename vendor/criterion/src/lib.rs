//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size` /
//! `throughput` / `finish`), `black_box`, `criterion_group!`, and
//! `criterion_main!` — backed by a simple median-of-samples timer
//! instead of criterion's statistical machinery. Each benchmark prints
//! one line: median time per iteration and, when a throughput was set,
//! elements per second.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up iteration outside the timed region.
        black_box(f());
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples: bencher.iter was not called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64();
            format!("  {:>12.0} elem/s", rate)
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {:>9.1} MiB/s", rate)
        }
        _ => String::new(),
    };
    println!("{id:<48} median {median:>12.3?}{extra}");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_apply_sample_size_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("t", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}

//! Branch Vanguard facade crate.

//! Smoke tests for the `vanguard-fuzz` differential harness.
//!
//! Three things are pinned down here:
//!
//! 1. a batch of seeded generated programs survives every gate (lint,
//!    interpreter differential under adversarial oracles, cycle-simulator
//!    parity) with zero failures;
//! 2. each deliberately-injected transform bug is caught by the gate it
//!    was designed to evade least — `flip-resolves` by the interpreter
//!    differential, `faulting-loads` by the static lint;
//! 3. shrinking a failing case yields a no-larger spec that still fails,
//!    and the reproducer lands on disk with a replay command.

use vanguard_bench::fuzz::{run_case, shrink, write_reproducer, CaseFailure, Inject};
use vanguard_workloads::FuzzSpec;

/// Seeds 0..N with no injected bug: every case must pass all gates, and a
/// healthy fraction must actually convert at least one branch site (a
/// batch where nothing transforms would test nothing).
#[test]
fn seeded_batch_has_no_divergence() {
    let mut transformed = 0u64;
    for seed in 0..40 {
        let spec = FuzzSpec::from_seed(seed);
        match run_case(&spec, None) {
            Ok(sites) => {
                if sites > 0 {
                    transformed += 1;
                }
            }
            Err(failure) => panic!("seed {seed} failed: {failure}"),
        }
    }
    assert!(
        transformed >= 20,
        "only {transformed}/40 cases converted a site; generator is too timid"
    );
}

/// Find a seed whose case converts at least one site, so an injected
/// transform bug has somewhere to live.
fn converting_spec() -> FuzzSpec {
    for seed in 0..20 {
        let spec = FuzzSpec::from_seed(seed);
        if matches!(run_case(&spec, None), Ok(sites) if sites > 0) {
            return spec;
        }
    }
    panic!("no seed in 0..20 converts a site");
}

#[test]
fn flipped_resolves_are_caught_by_differential() {
    let spec = converting_spec();
    // Negating every resolve condition keeps the pair complementary, so
    // the lint cannot see it; only running the program can.
    match run_case(&spec, Some(Inject::FlipResolves)) {
        Err(CaseFailure::Divergence { .. }) | Err(CaseFailure::SimParity { .. }) => {}
        other => panic!("expected a runtime divergence, got {other:?}"),
    }
}

#[test]
fn faulting_hoisted_loads_are_caught_by_lint() {
    let spec = converting_spec();
    // Stripping `.s` off hoisted loads is invisible to in-bounds
    // execution, so only the static lint can reject it.
    match run_case(&spec, Some(Inject::FaultingLoads)) {
        Err(CaseFailure::Lint { diagnostics, .. }) => {
            assert!(
                diagnostics
                    .iter()
                    .any(|d| d.contains("faulting-hoisted-load")),
                "wrong diagnostic: {diagnostics:?}"
            );
        }
        other => panic!("expected a lint failure, got {other:?}"),
    }
}

#[test]
fn shrink_produces_minimal_failing_reproducer() {
    let spec = converting_spec();
    let failure = run_case(&spec, Some(Inject::FlipResolves))
        .expect_err("injected bug must fail before shrinking");

    let (min_spec, min_failure) = shrink(&spec, Some(Inject::FlipResolves), failure);

    // The shrunk spec must still fail (shrink only adopts failing
    // candidates, and re-checks the final spec by construction)...
    assert!(
        run_case(&min_spec, Some(Inject::FlipResolves)).is_err(),
        "shrunk spec no longer reproduces the failure"
    );
    // ...and must be no larger than what we started with.
    assert!(min_spec.iterations <= spec.iterations);
    assert!(min_spec.sites <= spec.sites);
    assert!(min_spec.side_insts <= spec.side_insts);
    assert!(min_spec.stores_per_side <= spec.stores_per_side);
    assert!(min_spec.persistent <= spec.persistent);

    // The reproducer directory gets a replay command and both listings.
    let out = std::env::temp_dir().join(format!("vanguard-fuzz-smoke-{}", std::process::id()));
    let dir = write_reproducer(&out, &min_spec, Some(Inject::FlipResolves), &min_failure)
        .expect("reproducer write failed");
    let repro = std::fs::read_to_string(dir.join("repro.txt")).expect("repro.txt missing");
    assert!(repro.contains("--one"), "repro.txt lacks a replay command");
    assert!(repro.contains("--inject flip-resolves"));
    assert!(dir.join("original.asm").is_file());
    assert!(dir.join("transformed.asm").is_file());
    std::fs::remove_dir_all(&out).ok();
}

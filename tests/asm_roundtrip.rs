//! Property tests for the assembler: parse/disassemble round-trips.

use proptest::prelude::*;
use vanguard_isa::{
    parse_program, AluOp, CmpKind, CondKind, Inst, Operand, Program, ProgramBuilder, Reg,
};

/// Random straight-line body instructions covering every printable form.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = || (0u8..64).prop_map(Reg);
    let operand = prop_oneof![
        (0u8..64).prop_map(|r| Operand::Reg(Reg(r))),
        (-(1i64 << 20)..(1i64 << 20)).prop_map(Operand::Imm),
    ];
    prop_oneof![
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Shl),
                Just(AluOp::Shr),
                Just(AluOp::Mul),
                Just(AluOp::Div),
            ],
            reg(),
            operand.clone(),
            operand.clone()
        )
            .prop_map(|(op, dst, a, b)| Inst::alu(op, dst, a, b)),
        (reg(), operand.clone()).prop_map(|(d, s)| Inst::mov(d, s)),
        (reg(), reg(), -4096i64..4096, any::<bool>()).prop_map(|(dst, base, off, spec)| {
            Inst::Load {
                dst,
                base,
                offset: off * 8,
                speculative: spec,
            }
        }),
        (reg(), reg(), -4096i64..4096).prop_map(|(src, base, off)| Inst::store(src, base, off * 8)),
        (
            prop_oneof![
                Just(CmpKind::Eq),
                Just(CmpKind::Ne),
                Just(CmpKind::Lt),
                Just(CmpKind::Le),
                Just(CmpKind::Gt),
                Just(CmpKind::Ge),
                Just(CmpKind::Ult),
                Just(CmpKind::Uge),
            ],
            reg(),
            reg(),
            operand
        )
            .prop_map(|(kind, dst, a, b)| Inst::Cmp { kind, dst, a, b }),
        Just(Inst::Nop),
    ]
}

/// A random multi-block program: a chain of blocks with conditional
/// branches to later blocks, terminated by halt.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(proptest::collection::vec(arb_inst(), 0..6), 1..5),
        any::<bool>(),
    )
        .prop_map(|(bodies, use_predicts)| {
            let n = bodies.len();
            let mut b = ProgramBuilder::new();
            let blocks: Vec<_> = (0..=n).map(|i| b.block(format!("blk{i}"))).collect();
            for (i, body) in bodies.into_iter().enumerate() {
                b.push_all(blocks[i], body);
                // Conditional to the final block, falling through to next.
                if use_predicts {
                    b.push(blocks[i], Inst::Predict { target: blocks[n] });
                } else {
                    b.push(
                        blocks[i],
                        Inst::Branch {
                            cond: CondKind::Nz,
                            src: Reg(1),
                            target: blocks[n],
                        },
                    );
                }
                b.fallthrough(blocks[i], blocks[i + 1]);
            }
            b.push(blocks[n], Inst::Halt);
            b.set_entry(blocks[0]);
            b.finish().expect("generated program valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(disassemble(p)) reproduces the program exactly.
    #[test]
    fn disassemble_parse_roundtrip(p in arb_program()) {
        let text = p.disassemble();
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&p, &q, "text:\n{}", text);
    }

    /// The round-trip is a textual fixpoint (stable formatting).
    #[test]
    fn disassembly_is_a_fixpoint(p in arb_program()) {
        let t1 = p.disassemble();
        let t2 = parse_program(&t1).unwrap().disassemble();
        prop_assert_eq!(t1, t2);
    }
}

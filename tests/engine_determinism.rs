//! The engine's headline guarantee (DESIGN.md §6): outcomes from the
//! parallel, artifact-cached engine are **bit-identical** to strictly
//! serial staged execution, and cache keys never collide across distinct
//! sweep coordinates.

use proptest::prelude::*;
use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_core::engine::{
    CompileKey, Engine, PredictorKind, ProfileKey, SweepCell, TransformKey,
    DEFAULT_MAX_PROFILE_STEPS,
};
use vanguard_core::{Experiment, ExperimentOutcome, RefRun, TransformOptions};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn two_benchmark_inputs() -> Vec<vanguard_core::ExperimentInput> {
    // One INT, one FP benchmark: different site mixes, several REF
    // inputs at Full scale would be slow, so Quick.
    let mut inputs = Vec::new();
    for name in ["h264ref", "wrf"] {
        let spec = suite::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known benchmark");
        inputs.push(to_experiment_input(
            quick_spec(spec, BenchScale::Quick).build(),
        ));
    }
    inputs
}

/// Hand-rolled serial reference: the exact stage sequence the historical
/// `Experiment::run` loop performed, with no engine, no cache, no
/// threads.
fn serial_reference(
    exp: &Experiment,
    inputs: &[vanguard_core::ExperimentInput],
) -> Vec<ExperimentOutcome> {
    inputs
        .iter()
        .map(|input| {
            let profile = exp.profile(input).expect("profiles");
            let (baseline, transformed, report) = exp.compile_pair(&input.program, &profile);
            let runs: Vec<RefRun> = input
                .refs
                .iter()
                .map(|r| RefRun {
                    base: exp.simulate(&baseline, r).expect("simulates"),
                    exp: exp.simulate(&transformed, r).expect("simulates"),
                })
                .collect();
            ExperimentOutcome {
                name: input.name.clone(),
                report,
                runs,
                profile_dynamic_insts: profile.dynamic_insts,
            }
        })
        .collect()
}

fn assert_outcomes_identical(a: &[ExperimentOutcome], b: &[ExperimentOutcome]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.profile_dynamic_insts, y.profile_dynamic_insts);
        assert_eq!(x.report.converted.len(), y.report.converted.len());
        assert_eq!(x.report.skipped.len(), y.report.skipped.len());
        assert_eq!(x.runs.len(), y.runs.len());
        for (rx, ry) in x.runs.iter().zip(&y.runs) {
            // SimStats is PartialEq over every counter: bit-identity,
            // not approximate agreement.
            assert_eq!(rx.base, ry.base, "{}: baseline stats diverged", x.name);
            assert_eq!(rx.exp, ry.exp, "{}: transformed stats diverged", x.name);
        }
    }
}

/// Parallel engine outcomes == serial staged execution, for a
/// 2-benchmark suite across 1, 2, and 8 workers.
#[test]
fn engine_outcomes_are_identical_to_serial_for_any_worker_count() {
    let inputs = two_benchmark_inputs();
    let exp = Experiment::new(MachineConfig::four_wide());
    let reference = serial_reference(&exp, &inputs);
    for workers in [1, 2, 8] {
        let mut engine = Engine::with_workers(workers);
        let cells: Vec<SweepCell> = inputs
            .iter()
            .map(|input| SweepCell {
                bench: engine.add_benchmark(input.clone()),
                machine: exp.machine,
                predictor: exp.predictor,
            })
            .collect();
        let outcomes = engine
            .run_cells(&cells, &exp.transform, exp.max_profile_steps)
            .expect("engine runs cleanly");
        assert_outcomes_identical(&reference, &outcomes);
    }
}

/// `Experiment::run_suite` (the engine-backed public path) matches the
/// serial reference too.
#[test]
fn run_suite_matches_serial_reference() {
    let inputs = two_benchmark_inputs();
    let exp = Experiment::new(MachineConfig::four_wide());
    let reference = serial_reference(&exp, &inputs);
    let outcomes = exp.run_suite(&inputs).expect("runs cleanly");
    assert_outcomes_identical(&reference, &outcomes);
}

/// The suite-level artifact contract: one profile per benchmark, one
/// compiled pair per (benchmark, width), however many jobs reference
/// them.
#[test]
fn suite_sweep_computes_each_artifact_once() {
    let inputs = two_benchmark_inputs();
    let mut engine = Engine::with_workers(4);
    let cells: Vec<SweepCell> = inputs
        .iter()
        .flat_map(|input| {
            let bench = engine.add_benchmark(input.clone());
            MachineConfig::all_widths()
                .into_iter()
                .map(move |machine| SweepCell {
                    bench,
                    machine,
                    predictor: PredictorKind::Combined24KB,
                })
        })
        .collect();
    engine
        .run_cells(
            &cells,
            &TransformOptions::default(),
            DEFAULT_MAX_PROFILE_STEPS,
        )
        .expect("engine runs cleanly");
    let stats = engine.stats();
    assert_eq!(stats.profile_misses, 2, "{stats:?}");
    assert_eq!(stats.compile_misses, 6, "{stats:?}");
}

/// The wall-clock acceptance criterion: 4 workers beat serial by >2× on
/// a simulation-heavy sweep. Requires real cores — on boxes with fewer
/// than 4 CPUs the criterion is physically unmeasurable (oversubscribing
/// one core only adds scheduling overhead), so the test self-skips.
#[test]
fn four_workers_beat_serial_when_cores_allow() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup measurement: {cores} core(s) available, need 4");
        return;
    }
    let inputs = two_benchmark_inputs();
    let run = |workers: usize| {
        let mut engine = Engine::with_workers(workers);
        let cells: Vec<SweepCell> = inputs
            .iter()
            .flat_map(|input| {
                let bench = engine.add_benchmark(input.clone());
                MachineConfig::all_widths()
                    .into_iter()
                    .map(move |machine| SweepCell {
                        bench,
                        machine,
                        predictor: PredictorKind::Combined24KB,
                    })
            })
            .collect();
        let started = std::time::Instant::now();
        engine
            .run_cells(
                &cells,
                &TransformOptions::default(),
                DEFAULT_MAX_PROFILE_STEPS,
            )
            .expect("engine runs cleanly");
        started.elapsed()
    };
    run(1); // warm the page cache and branch predictors
    let serial = run(1);
    let parallel = run(4);
    let ratio = serial.as_secs_f64() / parallel.as_secs_f64();
    assert!(
        ratio > 2.0,
        "expected >2x speedup at 4 workers, got {ratio:.2}x ({serial:?} vs {parallel:?})"
    );
}

fn arb_options() -> impl Strategy<Value = TransformOptions> {
    (
        0u64..200, // threshold in hundredths
        1u64..512, // min_executions
        any::<bool>(),
        0usize..32, // max_hoist
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(th, min_exec, fwd, hoist, loads, shadow)| {
            let mut o = TransformOptions::default();
            o.select.threshold = th as f64 / 100.0;
            o.select.min_executions = min_exec;
            o.select.forward_only = fwd;
            o.max_hoist = hoist;
            o.hoist_loads = loads;
            o.shadow_temps = shadow;
            o
        })
}

fn arb_predictor() -> impl Strategy<Value = PredictorKind> {
    prop_oneof![
        Just(PredictorKind::Bimodal8K),
        Just(PredictorKind::Combined6KB),
        Just(PredictorKind::Combined24KB),
        Just(PredictorKind::TwoLevelLocal),
        Just(PredictorKind::Tage32KB),
        Just(PredictorKind::IslTage64KB),
    ]
}

fn options_differ(a: &TransformOptions, b: &TransformOptions) -> bool {
    a.select.threshold.to_bits() != b.select.threshold.to_bits()
        || a.select.min_executions != b.select.min_executions
        || a.select.forward_only != b.select.forward_only
        || a.max_hoist != b.max_hoist
        || a.hoist_loads != b.hoist_loads
        || a.shadow_temps != b.shadow_temps
}

proptest! {
    /// Cache keys are injective: distinct (machine, predictor, options)
    /// coordinates — or distinct benchmarks / step budgets — never map
    /// to the same profile or compile key.
    #[test]
    fn cache_keys_never_collide(
        bench_a in 0usize..8, bench_b in 0usize..8,
        width_a in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        width_b in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        pred_a in arb_predictor(), pred_b in arb_predictor(),
        steps_a in 1u64..4, steps_b in 1u64..4,
        opts_a in arb_options(), opts_b in arb_options(),
    ) {
        let pk_a = ProfileKey { bench: bench_a, predictor: pred_a, max_steps: steps_a };
        let pk_b = ProfileKey { bench: bench_b, predictor: pred_b, max_steps: steps_b };
        let profile_coords_differ =
            bench_a != bench_b || pred_a != pred_b || steps_a != steps_b;
        prop_assert_eq!(pk_a != pk_b, profile_coords_differ);

        let ck_a = CompileKey {
            profile: pk_a,
            width: width_a,
            options: TransformKey::from_options(&opts_a),
        };
        let ck_b = CompileKey {
            profile: pk_b,
            width: width_b,
            options: TransformKey::from_options(&opts_b),
        };
        let compile_coords_differ = profile_coords_differ
            || width_a != width_b
            || options_differ(&opts_a, &opts_b);
        prop_assert_eq!(ck_a != ck_b, compile_coords_differ);
    }
}

//! Fault-recovery integration tests: one test per fault class of the
//! `vanguard_bench::faultinject` harness (DESIGN.md §7.8).
//!
//! Each test stages its failure mode against the quick-scale fault
//! suite and asserts the engine's containment contract — the suite
//! completes, the fault surfaces as its typed outcome, and every
//! unaffected job is bit-identical to a clean run. The clean reference
//! is computed once and shared across tests.

use std::path::PathBuf;
use std::sync::OnceLock;
use vanguard_bench::faultinject::{clean_suite_stats, run_class, trap_victim, FaultClass};
use vanguard_isa::parse_program;
use vanguard_sim::SimStats;

fn clean() -> &'static [SimStats] {
    static CLEAN: OnceLock<Vec<SimStats>> = OnceLock::new();
    CLEAN.get_or_init(clean_suite_stats)
}

/// A per-test scratch directory under the system temp dir, removed on
/// drop so reruns start clean.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "vanguard-fault-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_class_contained(class: FaultClass) {
    let scratch = Scratch::new(class.name());
    let report = run_class(class, 0, &scratch.0, clean());
    for check in &report.checks {
        assert!(
            check.passed,
            "{}: check {:?} failed: {}\nengine summary:\n{}",
            class.name(),
            check.name,
            check.detail,
            report.summary
        );
    }
}

#[test]
fn guest_trap_is_contained_and_replayable() {
    assert_class_contained(FaultClass::GuestTrap);
}

#[test]
fn hang_is_cancelled_by_the_watchdog() {
    assert_class_contained(FaultClass::Hang);
}

#[test]
fn worker_panic_recovers_via_retry() {
    assert_class_contained(FaultClass::WorkerPanic);
}

#[test]
fn truncated_cache_entry_is_evicted_and_recomputed() {
    assert_class_contained(FaultClass::CacheTruncation);
}

#[test]
fn bitflipped_cache_entry_is_evicted_and_recomputed() {
    assert_class_contained(FaultClass::CacheBitflip);
}

#[test]
fn corrupted_replay_memo_is_detected_and_falls_back() {
    assert_class_contained(FaultClass::ReplayDivergence);
}

/// Disk pressure (failed stores, budget eviction) degrades to
/// compute-without-store, bit-identically. The other new daemon
/// classes (dead-claim-holder, compaction-under-kill) spawn worker
/// *processes* and run through the `faultinject` binary in CI instead:
/// a libtest binary must never re-exec itself as a worker.
#[test]
fn cache_disk_pressure_degrades_without_store() {
    assert_class_contained(FaultClass::CacheEnospc);
}

/// The quarantine reproducer is genuinely replayable: `program.asm`
/// re-parses to the victim program and `repro.txt` records the failing
/// job's coordinates.
#[test]
fn quarantine_reproducer_replays() {
    let scratch = Scratch::new("repro");
    let report = run_class(FaultClass::GuestTrap, 0, &scratch.0, clean());
    assert!(report.passed(), "{:#?}", report.checks);

    let qdir = scratch.0.join("quarantine-guest-trap");
    let entry = std::fs::read_dir(&qdir)
        .expect("quarantine directory exists")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.join("repro.txt").is_file())
        .expect("a quarantined job directory");

    let asm = std::fs::read_to_string(entry.join("program.asm")).expect("program.asm");
    let program = parse_program(&asm).expect("quarantined program re-parses");
    assert_eq!(
        program.disassemble(),
        trap_victim().program.disassemble(),
        "reproducer program round-trips to the victim"
    );

    let repro = std::fs::read_to_string(entry.join("repro.txt")).expect("repro.txt");
    for field in ["benchmark", "victim-trap", "failure"] {
        assert!(
            repro.contains(field),
            "repro.txt missing {field:?}:\n{repro}"
        );
    }
}

/// Different seeds stay contained too: the seed steers which job
/// panics and which cache entry is corrupted, never the verdict.
#[test]
fn containment_holds_across_seeds() {
    let scratch = Scratch::new("seeds");
    for seed in [1, 7] {
        for class in [FaultClass::WorkerPanic, FaultClass::CacheBitflip] {
            let report = run_class(class, seed, &scratch.0, clean());
            assert!(
                report.passed(),
                "{} seed {seed}: {:#?}",
                class.name(),
                report.checks
            );
        }
    }
}

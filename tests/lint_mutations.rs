//! Mutation tests for `vanguard_core::lint`.
//!
//! Two directions of honesty: transformed programs straight out of the
//! real pipeline must produce **zero** diagnostics (no false positives),
//! and a program hand-broken in each invariant dimension must produce
//! **exactly** the intended diagnostic (no false negatives). Each
//! mutation below seeds one §3 contract violation into a genuinely
//! transformed program and asserts the lint names it.

use vanguard_bench::{quick_spec, BenchScale};
use vanguard_core::{decompose_branches, lint_program, Experiment, LintKind, TransformOptions};
use vanguard_ir::Profile;
use vanguard_isa::{
    AluOp, BlockId, CmpKind, CondKind, Inst, Operand, Program, ProgramBuilder, Reg,
};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

/// The Figure 6 kernel: a loop over a condition array with loads on both
/// sides of a predictable-but-unbiased forward branch (same shape the
/// transform's own unit tests use).
fn figure6_loop(n: i64) -> (Program, BlockId) {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    let head = b.block("head");
    let bb_f = b.block("bb_f");
    let bb_t = b.block("bb_t");
    let latch = b.block("latch");
    let exit = b.block("exit");

    b.push(entry, Inst::mov(Reg(1), Operand::Imm(n)));
    b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
    b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000)));
    b.push(entry, Inst::mov(Reg(11), Operand::Imm(0x30000)));
    b.fallthrough(entry, head);

    b.push(head, Inst::load(Reg(4), Reg(3), 0));
    b.push(
        head,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(5),
            a: Reg(4),
            b: Operand::Imm(0),
        },
    );
    b.push(
        head,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(5),
            target: bb_t,
        },
    );
    b.fallthrough(head, bb_f);

    b.push(bb_f, Inst::load(Reg(6), Reg(10), 0));
    b.push(
        bb_f,
        Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(6)), Operand::Imm(1)),
    );
    b.push(bb_f, Inst::store(Reg(7), Reg(11), 0));
    b.push(bb_f, Inst::Jump { target: latch });

    b.push(bb_t, Inst::load(Reg(8), Reg(10), 8));
    b.push(
        bb_t,
        Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(8)), Operand::Imm(2)),
    );
    b.push(bb_t, Inst::store(Reg(9), Reg(11), 8));
    b.push(bb_t, Inst::Jump { target: latch });

    b.push(
        latch,
        Inst::alu(AluOp::Add, Reg(3), Operand::Reg(Reg(3)), Operand::Imm(8)),
    );
    b.push(
        latch,
        Inst::alu(AluOp::Add, Reg(10), Operand::Reg(Reg(10)), Operand::Imm(16)),
    );
    b.push(
        latch,
        Inst::alu(AluOp::Add, Reg(11), Operand::Reg(Reg(11)), Operand::Imm(16)),
    );
    b.push(
        latch,
        Inst::alu(AluOp::Sub, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1)),
    );
    b.push(
        latch,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(2),
            a: Reg(1),
            b: Operand::Imm(0),
        },
    );
    b.push(
        latch,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(2),
            target: head,
        },
    );
    b.fallthrough(latch, exit);
    b.push(exit, Inst::Halt);
    b.set_entry(entry);
    (b.finish().unwrap(), head)
}

fn profile_of(site: BlockId, taken: u64, total: u64, correct: u64) -> Profile {
    let mut p = Profile::new();
    for i in 0..total {
        p.record(site, i < taken, i < correct);
    }
    p
}

/// A genuinely transformed Figure 6 kernel (60/40 bias, 95% predictable).
fn transformed_fig6(opts: &TransformOptions) -> Program {
    let (mut p, head) = figure6_loop(100);
    let profile = profile_of(head, 60, 100, 95);
    let report = decompose_branches(&mut p, &profile, opts);
    assert_eq!(report.converted.len(), 1, "skipped: {:?}", report.skipped);
    p
}

/// Block id of the block whose name ends with `suffix`.
fn block_named(p: &Program, suffix: &str) -> BlockId {
    p.iter()
        .find(|(_, b)| b.name().ends_with(suffix))
        .map(|(id, _)| id)
        .unwrap_or_else(|| panic!("no block named *{suffix}"))
}

fn kinds(p: &Program) -> Vec<LintKind> {
    lint_program(p).iter().map(|d| d.kind).collect()
}

#[test]
fn transformed_kernel_is_clean() {
    for opts in [
        TransformOptions::default(),
        TransformOptions {
            shadow_temps: true,
            ..TransformOptions::default()
        },
        TransformOptions {
            hoist_loads: false,
            ..TransformOptions::default()
        },
    ] {
        let p = transformed_fig6(&opts);
        let diags = lint_program(&p);
        assert!(diags.is_empty(), "{opts:?}: {diags:?}");
    }
}

#[test]
fn quick_suite_pipeline_output_is_clean() {
    // Every benchmark, through the full pipeline (decompose → layout →
    // schedule → compact): baseline and transformed must both lint clean.
    for spec in suite::all_benchmarks() {
        let mut spec = quick_spec(spec, BenchScale::Quick);
        spec.iterations = spec.iterations.min(150);
        spec.train_iterations = spec.train_iterations.min(150);
        let name = spec.name.clone();
        let w = spec.build();

        let exp = Experiment::new(MachineConfig::four_wide());
        let input = vanguard_bench::to_experiment_input(w);
        let profile = exp.profile(&input).expect("profiles cleanly");
        let (baseline, transformed, _) = exp.compile_pair(&input.program, &profile);
        for (variant, program) in [("baseline", &baseline), ("transformed", &transformed)] {
            let diags = lint_program(program);
            assert!(diags.is_empty(), "{name}/{variant}: {diags:?}");
        }
    }
}

#[test]
fn mutation_unsunk_store() {
    let mut p = transformed_fig6(&TransformOptions::default());
    let rt = block_named(&p, ".resolve_t");
    let at = p.block(rt).insts().len() - 1;
    p.block_mut(rt)
        .insts_mut()
        .insert(at, Inst::store(Reg(4), Reg(11), 0x40));
    assert_eq!(kinds(&p), vec![LintKind::StoreAboveResolve]);
    let diag = &lint_program(&p)[0];
    assert_eq!(diag.block, rt);
    assert_eq!(diag.inst, Some(at));
}

#[test]
fn mutation_faulting_hoisted_load() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // Unmark the first speculative load in a resolution block: the hoist
    // forgot the non-faulting ld.s form.
    let rt = block_named(&p, ".resolve_t");
    let idx = p
        .block(rt)
        .insts()
        .iter()
        .position(|i| {
            matches!(
                i,
                Inst::Load {
                    speculative: true,
                    ..
                }
            )
        })
        .expect("transform hoisted a load");
    let Inst::Load { speculative, .. } = &mut p.block_mut(rt).insts_mut()[idx] else {
        unreachable!()
    };
    *speculative = false;
    assert_eq!(kinds(&p), vec![LintKind::FaultingHoistedLoad]);
    assert_eq!(lint_program(&p)[0].inst, Some(idx));
}

#[test]
fn mutation_clobbered_live_in() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // Write r10 (the data base, live into both correction blocks) above a
    // resolve, as if the transform hoisted without shadow protection.
    let rt = block_named(&p, ".resolve_t");
    let at = p.block(rt).insts().len() - 1;
    p.block_mut(rt)
        .insts_mut()
        .insert(at, Inst::mov(Reg(10), Operand::Imm(0)));
    let ks = kinds(&p);
    assert!(
        ks.contains(&LintKind::ClobberedLiveIn),
        "expected clobbered-live-in in {ks:?}"
    );
    assert!(
        !ks.contains(&LintKind::StoreAboveResolve) && !ks.contains(&LintKind::FaultingHoistedLoad),
        "unrelated diagnostics in {ks:?}"
    );
}

#[test]
fn mutation_missing_correction_write() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // The predicted fall-through path commits an extra architectural
    // value in its suffix; the correction block that repairs a mispredict
    // toward taken never writes it, so corrected executions diverge.
    let suffix = block_named(&p, "bb_f.suffix");
    p.block_mut(suffix)
        .insts_mut()
        .insert(0, Inst::mov(Reg(13), Operand::Reg(Reg(6))));
    let bb_f = block_named(&p, "bb_f");
    assert_eq!(kinds(&p), vec![LintKind::MissingCorrectionWrite]);
    assert_eq!(lint_program(&p)[0].block, bb_f);
}

#[test]
fn mutation_extra_correction_write() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // The correction block writes a register no predicted path writes:
    // predicted and corrected executions diverge.
    let bb_f = block_named(&p, "bb_f");
    p.block_mut(bb_f)
        .insts_mut()
        .insert(0, Inst::mov(Reg(20), Operand::Imm(7)));
    assert_eq!(kinds(&p), vec![LintKind::ExtraCorrectionWrite]);
}

#[test]
fn mutation_dbb_depth_overflow() {
    // 17 back-to-back predicts with no intervening resolve: the 17th
    // needs a DBB entry when all 16 are still outstanding.
    let mut b = ProgramBuilder::new();
    let chain: Vec<BlockId> = (0..18).map(|i| b.block(format!("p{i}"))).collect();
    for w in chain.windows(2) {
        b.push(w[0], Inst::Predict { target: w[1] });
        b.fallthrough(w[0], w[1]);
    }
    b.push(chain[17], Inst::Halt);
    b.set_entry(chain[0]);
    let p = b.finish().unwrap();
    let ks = kinds(&p);
    assert!(
        ks.contains(&LintKind::DbbOverflow),
        "expected dbb-overflow in {ks:?}"
    );
    let overflow = lint_program(&p)
        .into_iter()
        .find(|d| d.kind == LintKind::DbbOverflow)
        .unwrap();
    // Depth exceeds 16 exactly at the 17th predict.
    assert_eq!(overflow.block, chain[16]);
}

#[test]
fn mutation_unpaired_predict() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // Retarget the predict at a non-resolution block.
    let head = block_named(&p, "head");
    let exit = block_named(&p, "exit");
    let n = p.block(head).insts().len();
    let Inst::Predict { target } = &mut p.block_mut(head).insts_mut()[n - 1] else {
        panic!("head must end in predict")
    };
    *target = exit;
    let ks = kinds(&p);
    assert!(
        ks.contains(&LintKind::UnpairedPredict),
        "expected unpaired-predict in {ks:?}"
    );
}

#[test]
fn mutation_mismatched_resolve_pair() {
    let mut p = transformed_fig6(&TransformOptions::default());
    // Both resolves now test the same direction: one of them no longer
    // complements the prediction.
    let rt = block_named(&p, ".resolve_t");
    let rf = block_named(&p, ".resolve_nt");
    let cond_t = match p.block(rt).terminator() {
        Some(&Inst::Resolve { cond, .. }) => cond,
        other => panic!("resolve expected, got {other:?}"),
    };
    let n = p.block(rf).insts().len();
    let Inst::Resolve { cond, .. } = &mut p.block_mut(rf).insts_mut()[n - 1] else {
        panic!("resolve expected")
    };
    *cond = cond_t;
    let ks = kinds(&p);
    assert!(
        ks.contains(&LintKind::MismatchedResolvePair),
        "expected mismatched-resolve-pair in {ks:?}"
    );
}

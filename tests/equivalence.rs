//! Architectural-equivalence integration tests: the transformed program
//! must compute exactly what the original computes, on the interpreter
//! (under adversarial oracles) and on the cycle simulator (whose
//! committed state must also match the interpreter's).

use vanguard_bench::{quick_spec, BenchScale};
use vanguard_bpred::Combined;
use vanguard_compiler::profile_program;
use vanguard_core::{decompose_branches, TransformOptions};
use vanguard_isa::{Interpreter, Memory, Program, Reg, StopReason, TakenOracle};
use vanguard_sim::{MachineConfig, Simulator, StopCause};
use vanguard_workloads::suite;

/// Output-region snapshot (the kernels' observable result).
fn output_window(mem: &Memory) -> Vec<Option<u64>> {
    (0..0x1200 / 8)
        .map(|k| mem.read(0x90_0000 + k * 8))
        .collect()
}

fn interp_run(
    program: &Program,
    memory: Memory,
    init: &[(Reg, u64)],
    oracle: &mut TakenOracle,
) -> Vec<Option<u64>> {
    let mut i = Interpreter::new(program, memory);
    for &(r, v) in init {
        i.set_reg(r, v);
    }
    let out = i.run(oracle).expect("interprets cleanly");
    assert_eq!(out.stop, StopReason::Halted);
    output_window(i.memory())
}

#[test]
fn transformed_kernels_match_original_under_adversarial_oracles() {
    for name in ["h264ref", "mcf", "wrf", "vortex"] {
        let spec = suite::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let mut spec = quick_spec(spec, BenchScale::Quick);
        spec.iterations = 200;
        spec.train_iterations = 200;
        spec.data_footprint = spec.data_footprint.min(128 * 1024);
        let w = spec.build();

        let profile = profile_program(
            &w.program,
            w.train.memory.clone(),
            &w.train.init_regs,
            Combined::ptlsim_default(),
            50_000_000,
        )
        .unwrap();
        let mut transformed = w.program.clone();
        let report = decompose_branches(&mut transformed, &profile, &TransformOptions::default());
        assert!(!report.converted.is_empty(), "{name}: nothing converted");

        let reference = interp_run(
            &w.program,
            w.refs[0].memory.clone(),
            &w.refs[0].init_regs,
            &mut TakenOracle::AlwaysTaken,
        );
        for mut oracle in [
            TakenOracle::AlwaysTaken,
            TakenOracle::AlwaysNotTaken,
            TakenOracle::random(1234),
            TakenOracle::Alternate { next: true },
        ] {
            let got = interp_run(
                &transformed,
                w.refs[0].memory.clone(),
                &w.refs[0].init_regs,
                &mut oracle,
            );
            assert_eq!(got, reference, "{name} under {oracle:?}");
        }
    }
}

#[test]
fn simulator_commits_the_interpreter_state() {
    for name in ["perlbench", "gobmk"] {
        let spec = suite::spec2006_int()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let mut spec = quick_spec(spec, BenchScale::Quick);
        spec.iterations = 150;
        spec.train_iterations = 150;
        let w = spec.build();

        let reference = interp_run(
            &w.program,
            w.refs[0].memory.clone(),
            &w.refs[0].init_regs,
            &mut TakenOracle::AlwaysTaken,
        );

        // Baseline program through the pipeline.
        let mut sim = Simulator::new(
            &w.program,
            w.refs[0].memory.clone(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        for &(r, v) in &w.refs[0].init_regs {
            sim.set_reg(r, v);
        }
        let res = sim.run().expect("simulates cleanly");
        assert_eq!(res.stop, StopCause::Halted);
        assert_eq!(
            output_window(&res.memory),
            reference,
            "{name}: baseline sim"
        );

        // Transformed program through the pipeline (wrong paths, rollbacks,
        // resolve redirects — committed state must still be identical).
        let profile = profile_program(
            &w.program,
            w.train.memory.clone(),
            &w.train.init_regs,
            Combined::ptlsim_default(),
            50_000_000,
        )
        .unwrap();
        let mut transformed = w.program.clone();
        decompose_branches(&mut transformed, &profile, &TransformOptions::default());
        let mut sim = Simulator::new(
            &transformed,
            w.refs[0].memory.clone(),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        for &(r, v) in &w.refs[0].init_regs {
            sim.set_reg(r, v);
        }
        let res = sim.run().expect("simulates cleanly");
        assert_eq!(res.stop, StopCause::Halted);
        assert_eq!(
            output_window(&res.memory),
            reference,
            "{name}: transformed sim"
        );
        assert!(res.stats.resolves > 0);
    }
}

#[test]
fn full_compile_pipeline_preserves_semantics() {
    // layout + scheduling + transformation + compaction, end to end.
    let spec = suite::spec2000_int()
        .into_iter()
        .find(|s| s.name == "vortex")
        .unwrap();
    let mut spec = quick_spec(spec, BenchScale::Quick);
    spec.iterations = 120;
    spec.train_iterations = 120;
    let w = spec.build();
    let input = vanguard_bench::to_experiment_input(w.clone());
    let exp = vanguard_core::Experiment::new(MachineConfig::four_wide());
    let profile = exp.profile(&input).unwrap();
    let (baseline, transformed, _) = exp.compile_pair(&input.program, &profile);

    let reference = interp_run(
        &w.program,
        w.refs[0].memory.clone(),
        &w.refs[0].init_regs,
        &mut TakenOracle::AlwaysTaken,
    );
    for p in [&baseline, &transformed] {
        let got = interp_run(
            p,
            w.refs[0].memory.clone(),
            &w.refs[0].init_regs,
            &mut TakenOracle::random(5),
        );
        assert_eq!(got, reference);
    }
}

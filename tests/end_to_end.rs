//! End-to-end integration: workloads → profile → transform → simulate,
//! asserting the paper's headline shapes.

use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_core::{Experiment, PredictorKind};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

fn run_one(name: &str, machine: MachineConfig) -> vanguard_core::ExperimentOutcome {
    let spec = suite::all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());
    Experiment::new(machine)
        .run(&input)
        .expect("workload simulates cleanly")
}

#[test]
fn flagship_int_benchmark_speeds_up_clearly() {
    let out = run_one("h264ref", MachineConfig::four_wide());
    assert!(
        out.geomean_speedup_pct() > 8.0,
        "h264ref speedup {:.2}%",
        out.geomean_speedup_pct()
    );
    assert!(!out.report.converted.is_empty());
}

#[test]
fn weak_candidates_show_small_speedups() {
    // hmmer: highly predictable but almost no candidate forward branches.
    let out = run_one("hmmer", MachineConfig::four_wide());
    let spd = out.geomean_speedup_pct();
    assert!(spd < 8.0, "hmmer should be a low performer, got {spd:.2}%");
    assert!(
        spd > -2.0,
        "the transformation must never badly regress, got {spd:.2}%"
    );
}

#[test]
fn high_performers_beat_low_performers() {
    let high = run_one("h264ref", MachineConfig::four_wide()).geomean_speedup_pct();
    let low = run_one("libquantum", MachineConfig::four_wide()).geomean_speedup_pct();
    assert!(
        high > low + 3.0,
        "ordering collapsed: h264ref {high:.2}% vs libquantum {low:.2}%"
    );
}

#[test]
fn fp_speedups_are_positive_but_below_top_int() {
    // wrf: the top FP benchmark.
    let wrf = run_one("wrf", MachineConfig::four_wide()).geomean_speedup_pct();
    assert!(wrf > 3.0, "wrf speedup {wrf:.2}%");
}

#[test]
fn code_size_increase_is_moderate() {
    // The paper reports ~9% average PISCS with per-benchmark values below
    // ~16%; our synthetic kernels are smaller so the relative increase is
    // larger, but must stay bounded.
    for name in ["h264ref", "hmmer", "libquantum"] {
        let out = run_one(name, MachineConfig::four_wide());
        let piscs = out.report.piscs();
        assert!(
            (0.0..80.0).contains(&piscs),
            "{name}: PISCS {piscs:.1}% out of range"
        );
    }
}

#[test]
fn better_predictor_does_not_hurt_the_technique() {
    let spec = suite::spec2006_int()
        .into_iter()
        .find(|s| s.name == "astar")
        .unwrap();
    let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());
    let mut weak = Experiment::new(MachineConfig::four_wide());
    weak.predictor = PredictorKind::Bimodal8K;
    let mut strong = Experiment::new(MachineConfig::four_wide());
    strong.predictor = PredictorKind::IslTage64KB;
    let w = weak.run(&input).unwrap();
    let s = strong.run(&input).unwrap();
    // §5.3: the technique keeps working as predictors improve, and the
    // absolute machine gets faster.
    assert!(s.geomean_speedup_pct() > 3.0);
    assert!(
        s.runs[0].base.cycles < w.runs[0].base.cycles,
        "better predictor must speed up the baseline machine"
    );
}

#[test]
fn wider_machines_never_lose_from_the_transformation() {
    for machine in MachineConfig::all_widths() {
        let out = run_one("perlbench", machine);
        assert!(
            out.geomean_speedup_pct() > 0.0,
            "{}-wide: {:.2}%",
            machine.width,
            out.geomean_speedup_pct()
        );
    }
}

#[test]
fn issued_instruction_increase_is_small() {
    // Figure 14: the overhead is "generally quite small on average".
    let out = run_one("h264ref", MachineConfig::four_wide());
    let inc = out.issued_increase_pct();
    assert!(inc < 25.0, "issued-instruction increase {inc:.2}%");
}

#[test]
fn determinism_across_runs() {
    let a = run_one("sjeng", MachineConfig::four_wide());
    let b = run_one("sjeng", MachineConfig::four_wide());
    assert_eq!(a.runs[0].base.cycles, b.runs[0].base.cycles);
    assert_eq!(a.runs[0].exp.cycles, b.runs[0].exp.cycles);
}

//! Differential test of the paged [`Memory`] against [`ReferenceMemory`]
//! (the seed's word-granular `HashMap` store, retained as the executable
//! specification).
//!
//! Proptest drives both implementations with the same random operation
//! sequence — region maps, reads, writes, bulk loads, mapped-ness
//! queries, and full resets — and asserts observational equivalence
//! after every step. Addresses are biased toward a few pages so page
//! boundary straddles, hint misses, and implicit word-mapping all get
//! exercised.

use proptest::prelude::*;
use vanguard_isa::{Memory, ReferenceMemory};

/// One memory operation. Addresses stay below `ADDR_SPAN` so sequences
/// collide across pages often enough to hit every interaction.
#[derive(Clone, Debug)]
enum Op {
    MapRegion { start: u64, len: u64 },
    Read { addr: u64 },
    Write { addr: u64, value: u64 },
    LoadWords { start: u64, count: usize },
    IsMapped { addr: u64 },
    Reset,
}

const ADDR_SPAN: u64 = 0x2_0000; // 32 pages

fn arb_addr() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Page-local spread (the common case).
        4 => 0u64..0x4000,
        // Anywhere in the span, unaligned bytes included.
        2 => 0u64..ADDR_SPAN,
        // Page-boundary straddles.
        1 => (0u64..32).prop_map(|p| (p << 12).wrapping_sub(4) & (ADDR_SPAN - 1)),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (arb_addr(), 0u64..0x3000)
            .prop_map(|(start, len)| Op::MapRegion { start, len }),
        4 => arb_addr().prop_map(|addr| Op::Read { addr }),
        3 => (arb_addr(), any::<u64>()).prop_map(|(addr, value)| Op::Write { addr, value }),
        1 => (arb_addr(), 0usize..600)
            .prop_map(|(start, count)| Op::LoadWords { start, count }),
        2 => arb_addr().prop_map(|addr| Op::IsMapped { addr }),
        1 => Just(Op::Reset),
    ]
}

/// Applies one op to both stores, asserting any observable output agrees.
fn apply(paged: &mut Memory, reference: &mut ReferenceMemory, op: &Op) {
    match *op {
        Op::MapRegion { start, len } => {
            paged.map_region(start, len);
            reference.map_region(start, len);
        }
        Op::Read { addr } => {
            assert_eq!(paged.read(addr), reference.read(addr), "read {addr:#x}");
        }
        Op::Write { addr, value } => {
            paged.write(addr, value);
            reference.write(addr, value);
        }
        Op::LoadWords { start, count } => {
            let words: Vec<u64> = (0..count as u64)
                .map(|i| i.wrapping_mul(0x9e37) ^ start)
                .collect();
            paged.load_words(start, &words);
            reference.load_words(start, &words);
        }
        Op::IsMapped { addr } => {
            assert_eq!(
                paged.is_mapped(addr),
                reference.is_mapped(addr),
                "is_mapped {addr:#x}"
            );
        }
        Op::Reset => {
            *paged = Memory::new();
            *reference = ReferenceMemory::new();
        }
    }
}

/// Full-state comparison: residency count and the exact written set.
fn assert_equivalent(paged: &Memory, reference: &ReferenceMemory) {
    assert_eq!(paged.resident_words(), reference.resident_words());
    assert_eq!(paged.written_words(), reference.written_words());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn paged_memory_matches_reference(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut paged = Memory::new();
        let mut reference = ReferenceMemory::new();
        for op in &ops {
            apply(&mut paged, &mut reference, op);
        }
        assert_equivalent(&paged, &reference);
        // Sweep the whole span once more: every address agrees on
        // mapped-ness and value, not just the addresses the ops touched.
        for addr in (0..ADDR_SPAN).step_by(8) {
            prop_assert_eq!(paged.read(addr), reference.read(addr));
            prop_assert_eq!(paged.is_mapped(addr), reference.is_mapped(addr));
        }
    }

    #[test]
    fn clones_are_independent(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut paged = Memory::new();
        let mut reference = ReferenceMemory::new();
        for op in &ops {
            apply(&mut paged, &mut reference, op);
        }
        // A clone sees the same state; mutating it leaves the original
        // untouched (the engine clones one REF image per job).
        let mut cloned = paged.clone();
        assert_equivalent(&cloned, &reference);
        cloned.write(0x123458, 99);
        prop_assert_eq!(paged.read(0x123458), None);
        assert_equivalent(&paged, &reference);
    }
}

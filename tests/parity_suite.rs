//! Committed-state parity across the whole quick suite: every benchmark's
//! compiled baseline and transformed programs run through both the
//! functional interpreter and the cycle simulator (which fetches from the
//! shared pre-decoded image), and the architecturally observable results
//! must agree — the cycle model may stall, speculate, and roll back, but
//! it must commit exactly the interpreter's state.
//!
//! The transformed side is checked under *every* transform pass
//! (vanguard, meld, shadow, stacked), so a rival pass can never ship a
//! program the cycle model commits differently.

use std::sync::Arc;
use vanguard_bench::{quick_spec, BenchScale};
use vanguard_bpred::Combined;
use vanguard_core::{Experiment, TransformKind};
use vanguard_isa::{DecodedImage, Interpreter, Memory, Program, Reg, StopReason, TakenOracle};
use vanguard_sim::{MachineConfig, SimResult, Simulator, StopCause};
use vanguard_workloads::suite;

fn interp_state(
    program: &Program,
    memory: Memory,
    init: &[(Reg, u64)],
) -> (Vec<u64>, Vec<(u64, u64)>) {
    let mut i = Interpreter::new(program, memory);
    for &(r, v) in init {
        i.set_reg(r, v);
    }
    // Committed state is oracle-independent (the equivalence suite proves
    // it); not-taken matches the resolve's static prediction.
    let out = i
        .run(&mut TakenOracle::AlwaysNotTaken)
        .expect("interprets cleanly");
    assert_eq!(out.stop, StopReason::Halted);
    (i.regs().to_vec(), i.memory().written_words())
}

fn sim_result(image: &Arc<DecodedImage>, memory: Memory, init: &[(Reg, u64)]) -> SimResult {
    let mut sim = Simulator::with_image(
        Arc::clone(image),
        memory,
        MachineConfig::four_wide(),
        Box::new(Combined::ptlsim_default()),
    );
    for &(r, v) in init {
        sim.set_reg(r, v);
    }
    let res = sim.run().expect("simulates cleanly");
    assert_eq!(res.stop, StopCause::Halted);
    res
}

#[test]
fn quick_suite_commits_interpreter_state() {
    for spec in suite::all_benchmarks() {
        let mut spec = quick_spec(spec, BenchScale::Quick);
        // Debug-build sized: parity needs every control-flow shape, not
        // quick-scale statistics.
        spec.iterations = spec.iterations.min(150);
        spec.train_iterations = spec.train_iterations.min(150);
        let name = spec.name.clone();
        let w = spec.build();

        let mut exp = Experiment::new(MachineConfig::four_wide());
        let input = vanguard_bench::to_experiment_input(w.clone());
        let profile = exp.profile(&input).expect("profiles cleanly");

        for (k, kind) in TransformKind::ALL.into_iter().enumerate() {
            exp.transform.kind = kind;
            let (baseline, transformed, _) = exp.compile_pair(&input.program, &profile);
            // The baseline side is transform-independent: check it once.
            let programs: &[(&str, &Program)] = if k == 0 {
                &[("baseline", &baseline), (kind.name(), &transformed)]
            } else {
                &[(kind.name(), &transformed)]
            };
            for &(variant, program) in programs {
                let (regs, written) =
                    interp_state(program, w.refs[0].memory.clone(), &w.refs[0].init_regs);
                let image = Arc::new(DecodedImage::build(program));
                let res = sim_result(&image, w.refs[0].memory.clone(), &w.refs[0].init_regs);
                assert_eq!(
                    res.regs.to_vec(),
                    regs,
                    "{name}/{variant}: committed registers"
                );
                assert_eq!(
                    res.memory.written_words(),
                    written,
                    "{name}/{variant}: committed memory"
                );
            }
        }
    }
}

//! Mutation tests for the per-pass lint contracts
//! (`vanguard_core::lint_variant`), mirroring `lint_mutations.rs`:
//! genuinely transformed programs must be clean under their own pass's
//! contract, and a program hand-broken in each contract dimension must
//! produce exactly the intended diagnostic. The quick suite additionally
//! runs every benchmark through the full pipeline under *all* passes and
//! requires zero diagnostics.

use vanguard_bench::{quick_spec, BenchScale};
use vanguard_core::{
    apply_transform, lint_variant, Experiment, LintKind, TransformKind, TransformOptions,
};
use vanguard_ir::Profile;
use vanguard_isa::{
    AluOp, BlockId, CmpKind, CondKind, Inst, Operand, Program, ProgramBuilder, Reg,
};
use vanguard_sim::MachineConfig;
use vanguard_workloads::suite;

/// The Figure 6 kernel (memory on both sides — decomposable, not
/// meldable) with an extra pure-ALU hammock ahead of it (meldable, not
/// decomposition-profitable under a cold profile).
fn mixed_kernel() -> (Program, BlockId, BlockId) {
    let mut b = ProgramBuilder::new();
    let entry = b.block("entry");
    let meld_head = b.block("meld_head");
    let mt = b.block("mt");
    let mf = b.block("mf");
    let head = b.block("head");
    let bb_f = b.block("bb_f");
    let bb_t = b.block("bb_t");
    let exit = b.block("exit");

    b.push(entry, Inst::mov(Reg(3), Operand::Imm(0x10000)));
    b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x20000)));
    b.push(entry, Inst::mov(Reg(11), Operand::Imm(0x30000)));
    b.push(entry, Inst::mov(Reg(20), Operand::Imm(1)));
    b.push(entry, Inst::mov(Reg(22), Operand::Imm(50)));
    b.fallthrough(entry, meld_head);

    b.push(
        meld_head,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(20),
            target: mt,
        },
    );
    b.fallthrough(meld_head, mf);
    b.push(
        mt,
        Inst::alu(AluOp::Add, Reg(21), Operand::Reg(Reg(22)), Operand::Imm(7)),
    );
    b.push(mt, Inst::Jump { target: head });
    b.push(
        mf,
        Inst::alu(AluOp::Sub, Reg(21), Operand::Reg(Reg(22)), Operand::Imm(7)),
    );
    b.fallthrough(mf, head);

    b.push(head, Inst::load(Reg(4), Reg(3), 0));
    b.push(
        head,
        Inst::Cmp {
            kind: CmpKind::Ne,
            dst: Reg(5),
            a: Reg(4),
            b: Operand::Imm(0),
        },
    );
    b.push(
        head,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(5),
            target: bb_t,
        },
    );
    b.fallthrough(head, bb_f);

    b.push(bb_f, Inst::load(Reg(6), Reg(10), 0));
    b.push(
        bb_f,
        Inst::alu(AluOp::Add, Reg(7), Operand::Reg(Reg(6)), Operand::Imm(1)),
    );
    b.push(bb_f, Inst::store(Reg(7), Reg(11), 0));
    b.push(bb_f, Inst::Jump { target: exit });

    b.push(bb_t, Inst::load(Reg(8), Reg(10), 8));
    b.push(
        bb_t,
        Inst::alu(AluOp::Add, Reg(9), Operand::Reg(Reg(8)), Operand::Imm(2)),
    );
    b.push(bb_t, Inst::store(Reg(9), Reg(11), 8));
    b.push(bb_t, Inst::Jump { target: exit });

    b.push(exit, Inst::Halt);
    b.set_entry(entry);
    (b.finish().unwrap(), meld_head, head)
}

fn profile_of(site: BlockId, taken: u64, total: u64, correct: u64) -> Profile {
    let mut p = Profile::new();
    for i in 0..total {
        p.record(site, i < taken, i < correct);
    }
    p
}

/// Applies `kind` to the mixed kernel under a profile that qualifies the
/// memory diamond; returns (original, transformed).
fn transformed_pair(kind: TransformKind) -> (Program, Program) {
    let (original, _, head) = mixed_kernel();
    let profile = profile_of(head, 60, 100, 95);
    let options = TransformOptions {
        kind,
        ..TransformOptions::default()
    };
    let mut transformed = original.clone();
    let report = apply_transform(&mut transformed, &profile, &options);
    match kind {
        TransformKind::Vanguard | TransformKind::Shadow => {
            assert_eq!(report.converted.len(), 1, "skipped: {:?}", report.skipped)
        }
        TransformKind::Meld => assert_eq!(report.melded, 1),
        TransformKind::Stacked => {
            assert_eq!(report.converted.len(), 1);
            assert_eq!(report.melded, 1);
        }
    }
    (original, transformed)
}

fn kinds_of(kind: TransformKind, original: &Program, transformed: &Program) -> Vec<LintKind> {
    lint_variant(kind, original, transformed)
        .iter()
        .map(|d| d.kind)
        .collect()
}

/// Block id of the block whose name ends with `suffix`.
fn block_named(p: &Program, suffix: &str) -> BlockId {
    p.iter()
        .find(|(_, b)| b.name().ends_with(suffix))
        .map(|(id, _)| id)
        .unwrap_or_else(|| panic!("no block named *{suffix}"))
}

#[test]
fn every_pass_output_is_clean_under_its_contract() {
    for kind in TransformKind::ALL {
        let (original, transformed) = transformed_pair(kind);
        let diags = lint_variant(kind, &original, &transformed);
        assert!(diags.is_empty(), "{kind}: {diags:?}");
    }
}

#[test]
fn quick_suite_all_variants_lint_clean() {
    // Every benchmark, through the full pipeline under every pass
    // (transform → layout → schedule → compact): the shipped program must
    // satisfy its pass's structural contract.
    for spec in suite::all_benchmarks() {
        let mut spec = quick_spec(spec, BenchScale::Quick);
        spec.iterations = spec.iterations.min(150);
        spec.train_iterations = spec.train_iterations.min(150);
        let name = spec.name.clone();
        let w = spec.build();

        let mut exp = Experiment::new(MachineConfig::four_wide());
        let input = vanguard_bench::to_experiment_input(w);
        let profile = exp.profile(&input).expect("profiles cleanly");
        for kind in TransformKind::ALL {
            exp.transform.kind = kind;
            let (baseline, transformed, _) = exp.compile_pair(&input.program, &profile);
            let diags = lint_variant(kind, &baseline, &transformed);
            assert!(diags.is_empty(), "{name}/{kind}: {diags:?}");
        }
    }
}

#[test]
fn vanguard_contract_dispatches_to_the_decomposition_lint() {
    // lint_variant(Vanguard, ..) must be the §3 structural lint: break
    // the sunk-store invariant and expect its diagnostic.
    let (original, mut transformed) = transformed_pair(TransformKind::Vanguard);
    let rt = block_named(&transformed, ".resolve_t");
    let at = transformed.block(rt).insts().len() - 1;
    transformed
        .block_mut(rt)
        .insts_mut()
        .insert(at, Inst::store(Reg(4), Reg(11), 0x40));
    assert_eq!(
        kinds_of(TransformKind::Vanguard, &original, &transformed),
        vec![LintKind::StoreAboveResolve]
    );
}

#[test]
fn meld_mutation_new_store() {
    // Melding may only predicate ALU work; a store the original never had
    // violates side-effect equivalence.
    let (original, mut transformed) = transformed_pair(TransformKind::Meld);
    let head = block_named(&transformed, "meld_head");
    transformed
        .block_mut(head)
        .insts_mut()
        .insert(0, Inst::store(Reg(21), Reg(11), 0x40));
    assert_eq!(
        kinds_of(TransformKind::Meld, &original, &transformed),
        vec![LintKind::MeldStoreGrowth]
    );
}

#[test]
fn meld_mutation_new_branch() {
    // Melding removes branches; one appearing from nowhere means the
    // pass manufactured control flow.
    let (original, mut transformed) = transformed_pair(TransformKind::Meld);
    // Re-add a conditional branch AND delete one of the original's two,
    // so only the no-new-branches direction can fire... adding alone
    // already exceeds the original count since meld removed one.
    let head = block_named(&transformed, "meld_head");
    transformed.block_mut(head).insts_mut().insert(
        0,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(20),
            target: head,
        },
    );
    // One branch was melded away, so count is back to the original's:
    // add a second to exceed it.
    transformed.block_mut(head).insts_mut().insert(
        0,
        Inst::Branch {
            cond: CondKind::Nz,
            src: Reg(20),
            target: head,
        },
    );
    assert_eq!(
        kinds_of(TransformKind::Meld, &original, &transformed),
        vec![LintKind::MeldBranchGrowth]
    );
}

#[test]
fn meld_mutation_residual_decomposition() {
    // A meld pass must never emit predict/resolve: lint a *decomposed*
    // program under the meld contract.
    let (original, decomposed) = transformed_pair(TransformKind::Vanguard);
    let ks = kinds_of(TransformKind::Meld, &original, &decomposed);
    assert!(
        ks.contains(&LintKind::MeldResidualDecomposition),
        "expected meld-residual-decomposition in {ks:?}"
    );
}

#[test]
fn shadow_mutation_speculative_work() {
    // Shadow exposure moves no computation: any non-slice instruction in
    // a resolution block breaks the decode-model consistency contract.
    let (original, clean) = transformed_pair(TransformKind::Shadow);
    assert!(lint_variant(TransformKind::Shadow, &original, &clean).is_empty());
    let mut broken = clean.clone();
    let rt = block_named(&broken, ".resolve_t");
    broken.block_mut(rt).insts_mut().insert(
        0,
        Inst::alu(AluOp::Add, Reg(25), Operand::Reg(Reg(22)), Operand::Imm(1)),
    );
    let ks = kinds_of(TransformKind::Shadow, &original, &broken);
    assert!(
        ks.contains(&LintKind::ShadowSpeculativeWork),
        "expected shadow-speculative-work in {ks:?}"
    );
}

#[test]
fn shadow_output_does_no_code_motion() {
    // The shadow pass's report must show zero hoisting and its program
    // zero speculative loads — that is what distinguishes it from the
    // full decomposition.
    let (_, transformed) = transformed_pair(TransformKind::Shadow);
    let spec_loads = transformed
        .iter()
        .flat_map(|(_, b)| b.insts())
        .filter(|i| {
            matches!(
                i,
                Inst::Load {
                    speculative: true,
                    ..
                }
            )
        })
        .count();
    assert_eq!(spec_loads, 0, "shadow exposure hoisted loads");
}

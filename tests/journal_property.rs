//! Property tests for the `VGJ1` sweep journal (DESIGN.md §7.11):
//! random job sets round-trip bit-exactly, and a truncated or
//! corrupted tail is *dropped*, never trusted — every record a read
//! returns is byte-identical to one the writer appended, in append
//! order, no matter where the file was cut or which byte was flipped.

use proptest::prelude::*;
use std::collections::HashSet;
use std::fs;
use std::sync::atomic::{AtomicU64, Ordering};
use vanguard_core::{Journal, JournalRecord};

/// Magic (4) + per-record header (key 8 + len 4 + checksum 8).
const MAGIC_LEN: usize = 4;
const RECORD_HEADER: usize = 20;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh journal in a per-case temp directory (proptest runs many
/// cases per test; each needs its own file).
fn case_journal() -> (Journal, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "vanguard-journal-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    (Journal::new(dir.join("j.vgj")), dir)
}

fn arb_jobs() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..40)),
        0..12,
    )
}

/// Byte offset where record `i` starts, given the appended job set.
fn record_offsets(jobs: &[(u64, Vec<u8>)]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(jobs.len() + 1);
    let mut at = MAGIC_LEN;
    for (_, payload) in jobs {
        offsets.push(at);
        at += RECORD_HEADER + payload.len();
    }
    offsets.push(at);
    offsets
}

/// The records a snapshot must be a prefix of: exactly the appended
/// jobs, in order, byte-identical.
fn assert_valid_prefix(records: &[JournalRecord], jobs: &[(u64, Vec<u8>)]) {
    assert!(records.len() <= jobs.len());
    for (record, (key, payload)) in records.iter().zip(jobs) {
        assert_eq!(record.key, *key, "a surviving record's key was altered");
        assert_eq!(
            record.payload, *payload,
            "a surviving record's payload was altered"
        );
    }
}

/// First-wins key dedup: the sweep only ever journals a key once
/// (`Journal::append_new`), and compaction's own dedup matches
/// `JournalSnapshot::get`, so the compaction properties quantify over
/// unique-key job sets.
fn unique_jobs(jobs: Vec<(u64, Vec<u8>)>) -> Vec<(u64, Vec<u8>)> {
    let mut seen = HashSet::new();
    jobs.into_iter().filter(|(k, _)| seen.insert(*k)).collect()
}

/// Every returned record is byte-identical to an appended job, appears
/// at most once, and the whole sequence is an in-order subsequence of
/// the append order — nothing duplicated, resurrected, or fabricated.
fn assert_ordered_subset(records: &[JournalRecord], jobs: &[(u64, Vec<u8>)]) {
    let mut at = 0usize;
    for record in records {
        let pos = jobs[at..]
            .iter()
            .position(|(k, p)| *k == record.key && *p == record.payload)
            .unwrap_or_else(|| {
                panic!(
                    "record {:#x} was never appended (or is duplicated/reordered)",
                    record.key
                )
            });
        at += pos + 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random job sets round-trip: every appended record comes back,
    /// in append order, byte-identical, with nothing dropped.
    #[test]
    fn random_job_sets_roundtrip(jobs in arb_jobs()) {
        let (journal, dir) = case_journal();
        for (key, payload) in &jobs {
            journal.append(*key, payload).unwrap();
        }
        let snap = journal.read().unwrap();
        assert_eq!(snap.records.len(), jobs.len());
        assert_eq!(snap.dropped_bytes, 0);
        assert_valid_prefix(&snap.records, &jobs);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating the file at any point keeps exactly the records that
    /// fit whole before the cut; the torn tail is dropped, and the
    /// journal stays readable and appendable.
    #[test]
    fn truncation_keeps_only_whole_records(jobs in arb_jobs(), cut in any::<u64>()) {
        let (journal, dir) = case_journal();
        for (key, payload) in &jobs {
            journal.append(*key, payload).unwrap();
        }
        let bytes = if jobs.is_empty() {
            Vec::new()
        } else {
            fs::read(journal.path()).unwrap()
        };
        let offsets = record_offsets(&jobs);
        if !jobs.is_empty() {
            assert_eq!(bytes.len(), *offsets.last().unwrap());
            let cut = MAGIC_LEN + (cut as usize) % (bytes.len() - MAGIC_LEN + 1);
            fs::write(journal.path(), &bytes[..cut]).unwrap();
            let expected = offsets.iter().skip(1).filter(|&&end| end <= cut).count();
            let snap = journal.read().unwrap();
            assert_eq!(snap.records.len(), expected, "cut at byte {cut}");
            assert_eq!(snap.dropped_bytes as usize, cut - offsets[expected]);
            assert_valid_prefix(&snap.records, &jobs);
            // The truncated journal still accepts appends and the new
            // record is visible (the dead tail stays dropped).
            journal.append(0xfeed, b"resumed").unwrap();
            let after = journal.read().unwrap();
            assert!(after.records.len() <= expected + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte after the magic never lets a corrupted
    /// record through: the snapshot is a byte-identical prefix of the
    /// appended jobs that stops before the flipped record.
    #[test]
    fn corruption_is_never_trusted(jobs in arb_jobs(), at in any::<u64>(), flip in 1u8..=255) {
        let (journal, dir) = case_journal();
        if jobs.is_empty() {
            let _ = fs::remove_dir_all(&dir);
            return Ok(());
        }
        for (key, payload) in &jobs {
            journal.append(*key, payload).unwrap();
        }
        let mut bytes = fs::read(journal.path()).unwrap();
        let at = MAGIC_LEN + (at as usize) % (bytes.len() - MAGIC_LEN);
        bytes[at] ^= flip;
        fs::write(journal.path(), &bytes).unwrap();

        let offsets = record_offsets(&jobs);
        // Index of the record the flipped byte lives in.
        let hit = offsets.iter().skip(1).filter(|&&end| end <= at).count();
        let snap = journal.read().unwrap();
        assert_eq!(
            snap.records.len(),
            hit,
            "flip at byte {at} (record {hit}) must drop that record and the rest"
        );
        assert!(snap.dropped_bytes > 0);
        assert_valid_prefix(&snap.records, &jobs);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Compacting at any point is invisible to readers: the merged
    /// snapshot + tail view holds exactly the appended jobs, in append
    /// order, with nothing dropped — and `append_new` still refuses
    /// every key, including the ones that moved into the snapshot.
    #[test]
    fn compaction_at_any_point_is_invisible(jobs in arb_jobs(), split in any::<u64>()) {
        let (mut journal, dir) = case_journal();
        journal.set_compact_threshold(None);
        let jobs = unique_jobs(jobs);
        let k = if jobs.is_empty() { 0 } else { (split as usize) % (jobs.len() + 1) };
        for (key, payload) in &jobs[..k] {
            journal.append(*key, payload).unwrap();
        }
        journal.compact().unwrap();
        for (key, payload) in &jobs[k..] {
            journal.append(*key, payload).unwrap();
        }
        let snap = journal.read().unwrap();
        assert_eq!(snap.records.len(), jobs.len(), "compacted at {k}/{}", jobs.len());
        assert_eq!(snap.dropped_bytes, 0);
        for (record, (key, payload)) in snap.records.iter().zip(&jobs) {
            assert_eq!(record.key, *key, "append order changed across compaction");
            assert_eq!(record.payload, *payload);
        }
        // No key can ever be journaled twice across the boundary.
        for (key, _) in &jobs {
            assert!(!journal.append_new(*key, b"dup").unwrap(), "key {key:#x} resurrected");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The adversary after a compaction: truncating or bit-flipping
    /// either file (snapshot or tail) never duplicates, reorders, or
    /// fabricates a record — the merged view stays an in-order subset
    /// of the appended jobs, and the *undamaged* file's records all
    /// survive.
    #[test]
    fn corruption_after_compaction_never_fabricates(
        jobs in arb_jobs(),
        split in any::<u64>(),
        hit_snapshot in any::<bool>(),
        truncate in any::<bool>(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (mut journal, dir) = case_journal();
        journal.set_compact_threshold(None);
        let jobs = unique_jobs(jobs);
        if jobs.is_empty() {
            let _ = fs::remove_dir_all(&dir);
            return Ok(());
        }
        let k = (split as usize) % (jobs.len() + 1);
        for (key, payload) in &jobs[..k] {
            journal.append(*key, payload).unwrap();
        }
        journal.compact().unwrap();
        for (key, payload) in &jobs[k..] {
            journal.append(*key, payload).unwrap();
        }
        let target = if hit_snapshot {
            journal.snapshot_path()
        } else {
            journal.path().to_path_buf()
        };
        let mut bytes = fs::read(&target).unwrap();
        if bytes.len() > MAGIC_LEN {
            if truncate {
                let cut = MAGIC_LEN + (at as usize) % (bytes.len() - MAGIC_LEN + 1);
                bytes.truncate(cut);
            } else {
                let at = MAGIC_LEN + (at as usize) % (bytes.len() - MAGIC_LEN);
                bytes[at] ^= flip;
            }
            fs::write(&target, &bytes).unwrap();
        }
        let snap = journal.read().unwrap();
        assert_ordered_subset(&snap.records, &jobs);
        let intact = if hit_snapshot { &jobs[k..] } else { &jobs[..k] };
        for (key, payload) in intact {
            assert_eq!(
                snap.get(*key),
                Some(payload.as_slice()),
                "damage to one file lost a record of the other"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Workload calibration: the synthetic benchmarks must actually exhibit
//! the branch behaviour their specs claim — measured with the same
//! profiling pipeline the experiments use.

use vanguard_bench::{quick_spec, to_experiment_input, BenchScale};
use vanguard_core::Experiment;
use vanguard_sim::MachineConfig;
use vanguard_workloads::{suite, OutcomeModel};

/// For a sample of benchmarks across all four suites, profile the TRAIN
/// input and check every Markov site's measured bias and predictability
/// against its nominal targets.
#[test]
fn markov_sites_hit_their_targets_in_situ() {
    let sample = ["h264ref", "omnetpp", "wrf", "vortex", "mesa"];
    for name in sample {
        let spec = suite::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let nominal: Vec<(f64, f64)> = spec
            .sites
            .iter()
            .filter_map(|s| match s.model {
                OutcomeModel::Markov {
                    bias,
                    predictability,
                } => Some((bias, predictability)),
                _ => None,
            })
            .collect();
        let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());
        let profile = Experiment::new(MachineConfig::four_wide())
            .profile(&input)
            .expect("profiles");
        // Match each nominal site to the closest measured site jointly in
        // (bias, predictability): matching on bias alone is ambiguous when
        // a Random site (bias ≈ 0.5) sits next to a qual site's nominal.
        let measured: Vec<(f64, f64)> = profile
            .iter()
            .map(|(_, s)| (s.bias(), s.predictability()))
            .collect();
        for (nb, np) in nominal {
            let dist = |m: &(f64, f64)| (m.0 - nb).powi(2) + (m.1 - np).powi(2);
            let best = measured
                .iter()
                .min_by(|a, b| dist(a).partial_cmp(&dist(b)).unwrap())
                .expect("sites measured");
            assert!(
                (best.0 - nb).abs() < 0.10,
                "{name}: nominal bias {nb:.2}, closest measured {:.2}",
                best.0
            );
            assert!(
                (best.1 - np).abs() < 0.12,
                "{name}: nominal pred {np:.2}, matched site measured {:.2}",
                best.1
            );
        }
    }
}

/// The candidate selector must pick up the qualifying sites and skip
/// the biased/random ones, across suites.
#[test]
fn selection_counts_match_the_specs() {
    for name in ["perlbench", "gobmk", "libquantum", "leslie3d"] {
        let spec = suite::all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let expected_quals = spec
            .sites
            .iter()
            .filter(|s| {
                let b = s.model.nominal_bias();
                let p = s.model.nominal_predictability();
                p - b >= 0.05 && matches!(s.model, OutcomeModel::Markov { .. })
            })
            .count();
        let input = to_experiment_input(quick_spec(spec, BenchScale::Quick).build());
        let out = Experiment::new(MachineConfig::four_wide())
            .run(&input)
            .expect("runs");
        let converted = out.report.converted.len();
        // Allow ±1: measured bias/pred sit near the threshold for some
        // sites under the quick input sizes.
        assert!(
            (converted as i64 - expected_quals as i64).abs() <= 1,
            "{name}: expected ≈{expected_quals} conversions, got {converted}"
        );
    }
}

/// Dynamic instruction counts scale linearly with iterations (no hidden
/// dependence of kernel structure on input length).
#[test]
fn dynamic_work_scales_with_iterations() {
    let base = suite::spec2006_int().remove(0);
    let mut small = quick_spec(base.clone(), BenchScale::Quick);
    small.iterations = 200;
    small.ref_inputs = 1;
    let mut large = small.clone();
    large.iterations = 400;

    let run = |s: vanguard_workloads::BenchmarkSpec| {
        let input = to_experiment_input(s.build());
        Experiment::new(MachineConfig::four_wide())
            .run(&input)
            .unwrap()
            .runs[0]
            .base
            .committed()
    };
    let c1 = run(small);
    let c2 = run(large);
    let ratio = c2 as f64 / c1 as f64;
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "work should double with iterations: {c1} -> {c2} (x{ratio:.2})"
    );
}

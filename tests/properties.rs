//! Property-based tests (proptest) on the core invariants:
//! transformation equivalence, scheduler legality, simulator/interpreter
//! agreement, and data-structure laws.

use proptest::prelude::*;
use vanguard_bpred::Combined;
use vanguard_compiler::{
    compact_program, if_convert, profile_program, schedule_order, schedule_program, SchedConfig,
};
use vanguard_core::{decompose_branches, SelectOptions, TransformOptions};
use vanguard_ir::{DepDag, RegSet};
use vanguard_isa::{
    AluOp, BasicBlock, CmpKind, CondKind, Inst, Interpreter, Memory, Operand, Program,
    ProgramBuilder, Reg, TakenOracle,
};
use vanguard_sim::{MachineConfig, Simulator};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A random non-control instruction. Destinations stay in r1..r9 so the
/// data pointer (r10) and harness registers (r12..r14) are never
/// clobbered; sources may read any of them.
fn arb_body_inst() -> impl Strategy<Value = Inst> {
    let reg = || (1u8..10).prop_map(Reg);
    let operand = prop_oneof![
        (1u8..12).prop_map(|r| Operand::Reg(Reg(r))),
        (-100i64..100).prop_map(Operand::Imm),
    ];
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Mul),
    ];
    prop_oneof![
        4 => (alu_op, reg(), operand.clone(), operand.clone())
            .prop_map(|(op, dst, a, b)| Inst::alu(op, dst, a, b)),
        1 => (reg(), 0i64..64).prop_map(|(dst, off)| Inst::Load {
            dst,
            base: Reg(10),
            offset: off * 8,
            speculative: false,
        }),
        1 => (reg(), 0i64..64).prop_map(|(src, off)| Inst::store(src, Reg(10), off * 8)),
    ]
}

/// A random hammock program: `head` (with a data-driven branch) →
/// {taken, fall} → join → next head … → halt, over `n_sites` sites.
fn arb_hammock_program(
    n_sites: usize,
) -> impl Strategy<Value = (Program, Vec<u64 /* cond words */>)> {
    let site = (
        proptest::collection::vec(arb_body_inst(), 0..5), // taken body
        proptest::collection::vec(arb_body_inst(), 0..5), // fall body
        proptest::collection::vec(arb_body_inst(), 0..3), // join body
    );
    (
        proptest::collection::vec(site, n_sites),
        proptest::collection::vec(any::<bool>(), 64),
    )
        .prop_map(|(sites, conds)| {
            let mut b = ProgramBuilder::new();
            let entry = b.block("entry");
            b.push(entry, Inst::mov(Reg(10), Operand::Imm(0x4000)));
            b.push(entry, Inst::mov(Reg(12), Operand::Imm(0x8000))); // cond ptr
            let mut prev = entry;
            for (s, (taken_body, fall_body, join_body)) in sites.into_iter().enumerate() {
                let head = b.block(format!("head{s}"));
                let fall = b.block(format!("fall{s}"));
                let taken = b.block(format!("taken{s}"));
                let join = b.block(format!("join{s}"));
                b.fallthrough(prev, head);
                b.push(head, Inst::load(Reg(13), Reg(12), (s as i64) * 8));
                b.push(
                    head,
                    Inst::Cmp {
                        kind: CmpKind::Ne,
                        dst: Reg(14),
                        a: Reg(13),
                        b: Operand::Imm(0),
                    },
                );
                b.push(
                    head,
                    Inst::Branch {
                        cond: CondKind::Nz,
                        src: Reg(14),
                        target: taken,
                    },
                );
                b.fallthrough(head, fall);
                b.push_all(fall, fall_body);
                b.push(fall, Inst::Jump { target: join });
                b.push_all(taken, taken_body);
                b.fallthrough(taken, join);
                b.push_all(join, join_body);
                prev = join;
            }
            let exit = b.block("exit");
            b.fallthrough(prev, exit);
            // Materialise every register so nothing is trivially dead.
            for r in 1..12u8 {
                b.push(exit, Inst::store(Reg(r), Reg(10), 512 + i64::from(r) * 8));
            }
            b.push(exit, Inst::Halt);
            b.set_entry(entry);
            let p = b.finish().expect("generated program is valid");
            let conds = conds.into_iter().map(u64::from).collect();
            (p, conds)
        })
}

fn memory_with(conds: &[u64]) -> Memory {
    let mut m = Memory::new();
    m.map_region(0x4000, 4096);
    let data: Vec<u64> = (0..64).map(|i| i * 37 % 101).collect();
    m.load_words(0x4000, &data);
    m.load_words(0x8000, conds);
    m
}

fn observable(i: &Interpreter<'_>) -> (Vec<u64>, Vec<Option<u64>>) {
    let regs = i.regs()[1..12].to_vec();
    let mem = (0..128).map(|k| i.memory().read(0x4000 + k * 8)).collect();
    (regs, mem)
}

/// A synthetic profile that marks every forward branch as a perfect
/// candidate (the equivalence property must hold regardless of profile).
fn force_all_profile(p: &Program) -> vanguard_ir::Profile {
    let mut profile = vanguard_ir::Profile::new();
    for (bid, block) in p.iter() {
        if matches!(block.terminator(), Some(Inst::Branch { .. })) {
            for i in 0..200 {
                profile.record(bid, i % 5 < 3, i % 10 != 0);
            }
        }
    }
    profile
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Decomposed Branch Transformation preserves architectural
    /// semantics on arbitrary hammock programs, under arbitrary oracles.
    #[test]
    fn transformation_preserves_semantics(
        (program, conds) in arb_hammock_program(3),
        oracle_seed in 1u64..u64::MAX,
    ) {
        let profile = force_all_profile(&program);
        let mut transformed = program.clone();
        let options = TransformOptions {
            select: SelectOptions { min_executions: 1, ..SelectOptions::default() },
            ..TransformOptions::default()
        };
        decompose_branches(&mut transformed, &profile, &options);
        prop_assert!(transformed.validate().is_ok());

        let mut reference = Interpreter::new(&program, memory_with(&conds));
        reference.run(&mut TakenOracle::AlwaysTaken).unwrap();
        let want = observable(&reference);

        for mut oracle in [
            TakenOracle::AlwaysTaken,
            TakenOracle::AlwaysNotTaken,
            TakenOracle::random(oracle_seed),
        ] {
            let mut got_i = Interpreter::new(&transformed, memory_with(&conds));
            got_i.run(&mut oracle).unwrap();
            let got = observable(&got_i);
            // Memory must match exactly; registers too (the exit block
            // stores them, making them part of memory as well).
            prop_assert_eq!(&got.1, &want.1);
            prop_assert_eq!(&got.0, &want.0);
        }
    }

    /// The full compile pipeline (layout + schedule + transform + compact)
    /// also preserves semantics.
    #[test]
    fn compile_pipeline_preserves_semantics(
        (program, conds) in arb_hammock_program(2),
    ) {
        let profile = profile_program(
            &program, memory_with(&conds), &[], Combined::ptlsim_default(), 1_000_000,
        ).unwrap();
        let mut compiled = program.clone();
        let opts = TransformOptions {
            select: SelectOptions { min_executions: 1, threshold: -1.0, ..SelectOptions::default() },
            ..TransformOptions::default()
        };
        decompose_branches(&mut compiled, &profile, &opts);
        schedule_program(&mut compiled, &SchedConfig::for_width(4));
        let compiled = compact_program(&compiled);

        let mut a = Interpreter::new(&program, memory_with(&conds));
        a.run(&mut TakenOracle::AlwaysTaken).unwrap();
        let mut b = Interpreter::new(&compiled, memory_with(&conds));
        b.run(&mut TakenOracle::random(99)).unwrap();
        prop_assert_eq!(observable(&a).1, observable(&b).1);
    }

    /// The cycle simulator's committed state equals the interpreter's for
    /// arbitrary (possibly transformed) programs.
    #[test]
    fn simulator_matches_interpreter(
        (program, conds) in arb_hammock_program(2),
        transform in any::<bool>(),
    ) {
        let mut p = program.clone();
        if transform {
            let opts = TransformOptions {
                select: SelectOptions { min_executions: 1, ..SelectOptions::default() },
                ..TransformOptions::default()
            };
            decompose_branches(&mut p, &force_all_profile(&program), &opts);
        }
        let mut i = Interpreter::new(&program, memory_with(&conds));
        i.run(&mut TakenOracle::AlwaysTaken).unwrap();
        let want = observable(&i).1;

        let sim = Simulator::new(
            &p,
            memory_with(&conds),
            MachineConfig::four_wide(),
            Box::new(Combined::ptlsim_default()),
        );
        let res = sim.run().unwrap();
        let got: Vec<Option<u64>> = (0..128).map(|k| res.memory.read(0x4000 + k * 8)).collect();
        prop_assert_eq!(got, want);
    }

    /// The list scheduler never violates a dependence edge.
    #[test]
    fn scheduler_respects_dependences(
        insts in proptest::collection::vec(arb_body_inst(), 1..24),
    ) {
        let order = schedule_order(&insts, &SchedConfig::for_width(4));
        // Must be a permutation.
        let mut seen = vec![false; insts.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        // Every DAG edge must point forward in the new order.
        let mut block = BasicBlock::new("p");
        block.insts_mut().extend(insts.iter().cloned());
        let dag = DepDag::build(&block);
        let pos: Vec<usize> = {
            let mut pos = vec![0; insts.len()];
            for (at, &i) in order.iter().enumerate() {
                pos[i] = at;
            }
            pos
        };
        for i in 0..insts.len() {
            for e in dag.succs(i) {
                prop_assert!(pos[e.from] < pos[e.to], "edge {:?} violated", e);
            }
        }
    }

    /// Scheduling a straight-line program never changes its result.
    #[test]
    fn scheduling_is_semantics_preserving(
        insts in proptest::collection::vec(arb_body_inst(), 1..20),
    ) {
        let build = |body: &[Inst]| {
            let mut b = ProgramBuilder::new();
            let e = b.block("entry");
            b.push(e, Inst::mov(Reg(10), Operand::Imm(0x4000)));
            b.push_all(e, body.iter().cloned());
            b.push(e, Inst::Halt);
            b.set_entry(e);
            b.finish().unwrap()
        };
        let p0 = build(&insts);
        let mut p1 = p0.clone();
        schedule_program(&mut p1, &SchedConfig::for_width(8));
        let run = |p: &Program| {
            let mut m = Memory::new();
            m.map_region(0x4000, 4096);
            let mut i = Interpreter::new(p, m);
            i.run(&mut TakenOracle::AlwaysTaken).unwrap();
            observable(&i)
        };
        prop_assert_eq!(run(&p0), run(&p1));
    }

    /// If-conversion preserves semantics on ALU-only diamonds.
    #[test]
    fn if_conversion_preserves_semantics(
        taken_body in proptest::collection::vec(
            (1u8..10, -50i64..50).prop_map(|(d, imm)| Inst::alu(
                AluOp::Add, Reg(d), Operand::Reg(Reg(d)), Operand::Imm(imm))),
            1..4),
        fall_body in proptest::collection::vec(
            (1u8..10, -50i64..50).prop_map(|(d, imm)| Inst::alu(
                AluOp::Xor, Reg(d), Operand::Reg(Reg(d)), Operand::Imm(imm))),
            1..4),
        r1 in 0u64..4,
    ) {
        let mut b = ProgramBuilder::new();
        let a = b.block("a");
        let t = b.block("t");
        let f = b.block("f");
        let j = b.block("join");
        b.push(a, Inst::Branch { cond: CondKind::Nz, src: Reg(1), target: t });
        b.fallthrough(a, f);
        b.push_all(t, taken_body);
        b.push(t, Inst::Jump { target: j });
        b.push_all(f, fall_body);
        b.fallthrough(f, j);
        for r in 1..10u8 {
            b.push(j, Inst::store(Reg(r), Reg(10), i64::from(r) * 8));
        }
        b.push(j, Inst::Halt);
        b.set_entry(a);
        let p0 = b.finish().unwrap();
        let mut p1 = p0.clone();
        if_convert(&mut p1, 8);
        prop_assert!(p1.validate().is_ok());

        let run = |p: &Program| {
            let mut m = Memory::new();
            m.map_region(0, 4096);
            let mut i = Interpreter::new(p, m);
            i.set_reg(Reg(1), r1);
            i.set_reg(Reg(10), 0x100);
            i.run(&mut TakenOracle::random(3)).unwrap();
            (0..16).map(|k| i.memory().read(0x100 + k * 8)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&p0), run(&p1));
    }

    /// RegSet obeys set-algebra laws (cross-checked against HashSet).
    #[test]
    fn regset_matches_hashset(
        xs in proptest::collection::vec(0u8..64, 0..40),
        ys in proptest::collection::vec(0u8..64, 0..40),
    ) {
        use std::collections::HashSet;
        let a: RegSet = xs.iter().map(|&r| Reg(r)).collect();
        let b: RegSet = ys.iter().map(|&r| Reg(r)).collect();
        let ha: HashSet<u8> = xs.iter().copied().collect();
        let hb: HashSet<u8> = ys.iter().copied().collect();
        prop_assert_eq!(a.len(), ha.len());
        prop_assert_eq!(a.union(&b).len(), ha.union(&hb).count());
        prop_assert_eq!(a.intersection(&b).len(), ha.intersection(&hb).count());
        prop_assert_eq!(a.difference(&b).len(), ha.difference(&hb).count());
        for r in 0..64u8 {
            prop_assert_eq!(a.contains(Reg(r)), ha.contains(&r));
        }
    }

    /// Encoded layout is gap-free and monotone regardless of program shape.
    #[test]
    fn layout_is_contiguous((program, _) in arb_hammock_program(2)) {
        let layout = program.layout();
        let mut expected = vanguard_isa::CODE_BASE;
        for &bid in program.layout_order() {
            prop_assert_eq!(layout.block_start(bid), expected);
            for (i, inst) in program.block(bid).insts().iter().enumerate() {
                prop_assert_eq!(layout.inst_addr(bid, i), expected);
                expected += inst.encoded_size();
            }
        }
        prop_assert_eq!(layout.code_bytes(), expected - vanguard_isa::CODE_BASE);
    }
}
